//! The SOAP 1.2 envelope.

use wsg_net::cov;
use wsg_xml::{Element, XmlError, XmlWriter};

use crate::addressing::MessageHeaders;
use crate::error::SoapError;
use crate::fault::Fault;
use crate::{qnames, SOAP_ENV_NS};

/// A SOAP 1.2 message: WS-Addressing properties, additional header blocks
/// and a body.
///
/// The body is either one application payload element or a [`Fault`].
///
/// ```
/// use wsg_soap::{Envelope, MessageHeaders};
/// use wsg_xml::Element;
///
/// # fn main() -> Result<(), wsg_soap::SoapError> {
/// let env = Envelope::request(
///     MessageHeaders::request("http://quotes", "urn:stock:Notify"),
///     Element::text_node("tick", "ACME"),
/// );
/// let parsed = Envelope::parse(&env.to_xml())?;
/// assert_eq!(parsed.body().unwrap().local_name(), "tick");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    addressing: MessageHeaders,
    extra_headers: Vec<Element>,
    body: Body,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Body {
    Payload(Element),
    Fault(Fault),
    Empty,
}

impl Envelope {
    /// A request/notification message with the given addressing and payload.
    pub fn request(addressing: MessageHeaders, payload: Element) -> Self {
        Envelope { addressing, extra_headers: Vec::new(), body: Body::Payload(payload) }
    }

    /// A fault message.
    pub fn fault(addressing: MessageHeaders, fault: Fault) -> Self {
        Envelope { addressing, extra_headers: Vec::new(), body: Body::Fault(fault) }
    }

    /// A message with an empty body (e.g. an acknowledgement).
    pub fn empty(addressing: MessageHeaders) -> Self {
        Envelope { addressing, extra_headers: Vec::new(), body: Body::Empty }
    }

    /// Builder: attach a non-addressing header block (e.g. a
    /// `CoordinationContext`).
    pub fn with_header(mut self, header: Element) -> Self {
        self.extra_headers.push(header);
        self
    }

    /// WS-Addressing properties.
    pub fn addressing(&self) -> &MessageHeaders {
        &self.addressing
    }

    /// Mutable WS-Addressing properties (the gossip layer rewrites `To`
    /// when re-routing).
    pub fn addressing_mut(&mut self) -> &mut MessageHeaders {
        &mut self.addressing
    }

    /// Non-addressing header blocks.
    pub fn headers(&self) -> &[Element] {
        &self.extra_headers
    }

    /// First header block matching namespace + local name.
    pub fn header(&self, ns: &str, local: &str) -> Option<&Element> {
        self.extra_headers
            .iter()
            .find(|h| h.name().matches(Some(ns), local))
    }

    /// Add a header block.
    pub fn push_header(&mut self, header: Element) {
        self.extra_headers.push(header);
    }

    /// Remove and return the first header matching namespace + local name.
    pub fn take_header(&mut self, ns: &str, local: &str) -> Option<Element> {
        let idx = self
            .extra_headers
            .iter()
            .position(|h| h.name().matches(Some(ns), local))?;
        Some(self.extra_headers.remove(idx))
    }

    /// The payload element, unless this is a fault or an empty message.
    pub fn body(&self) -> Option<&Element> {
        match &self.body {
            Body::Payload(e) => Some(e),
            _ => None,
        }
    }

    /// The fault, if this is a fault message.
    pub fn as_fault(&self) -> Option<&Fault> {
        match &self.body {
            Body::Fault(f) => Some(f),
            _ => None,
        }
    }

    /// Whether the message is a fault.
    pub fn is_fault(&self) -> bool {
        matches!(self.body, Body::Fault(_))
    }

    /// Serialise to the element tree form.
    pub fn to_element(&self) -> Element {
        let mut envelope = Element::in_ns("env", SOAP_ENV_NS, "Envelope")
            .with_namespace("env", SOAP_ENV_NS)
            .with_namespace("wsa", crate::WSA_NS);
        let addressing_blocks = self.addressing.to_header_blocks();
        if !addressing_blocks.is_empty() || !self.extra_headers.is_empty() {
            let mut header = Element::in_ns("env", SOAP_ENV_NS, "Header");
            for block in addressing_blocks {
                header.push_child(block);
            }
            for block in &self.extra_headers {
                header.push_child(block.clone());
            }
            envelope.push_child(header);
        }
        let mut body = Element::in_ns("env", SOAP_ENV_NS, "Body");
        match &self.body {
            Body::Payload(e) => body.push_child(e.clone()),
            Body::Fault(f) => body.push_child(f.to_element()),
            Body::Empty => {}
        }
        envelope.push_child(body);
        envelope
    }

    /// Stream this envelope into an open [`XmlWriter`] — byte-identical to
    /// serialising [`Envelope::to_element`], without building the tree.
    ///
    /// # Errors
    ///
    /// Propagates writer errors (e.g. an invalid payload element name).
    pub fn write_into(&self, w: &mut XmlWriter) -> Result<(), XmlError> {
        w.start_element(&qnames::ENVELOPE)?;
        w.declare_namespace("env", SOAP_ENV_NS)?;
        w.declare_namespace("wsa", crate::WSA_NS)?;
        if !self.addressing.is_empty() || !self.extra_headers.is_empty() {
            w.start_element(&qnames::HEADER)?;
            self.addressing.write_header_blocks(w)?;
            for block in &self.extra_headers {
                block.write_into(w)?;
            }
            w.end_element()?;
        }
        w.start_element(&qnames::BODY)?;
        match &self.body {
            Body::Payload(e) => e.write_into(w)?,
            Body::Fault(f) => f.to_element().write_into(w)?,
            Body::Empty => {}
        }
        w.end_element()?;
        w.end_element()
    }

    /// Serialise to the wire (compact XML with declaration) into `buf`,
    /// which is cleared first and whose allocation is reused — the hot-path
    /// form of [`Envelope::to_xml`] for callers that keep a scratch buffer.
    pub fn write_xml(&self, buf: &mut String) {
        let mut w = XmlWriter::new_into(std::mem::take(buf));
        w.declaration().expect("declaration is written first");
        self.write_into(&mut w).expect("envelope is always writable");
        *buf = w.finish().expect("envelope is always balanced");
    }

    /// Serialise to the wire (compact XML with declaration).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out);
        out
    }

    /// Wire size in bytes — used by the simulator's bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        self.to_xml().len()
    }

    /// Parse an envelope from its XML form.
    ///
    /// # Errors
    ///
    /// Returns [`SoapError::Xml`] for malformed XML, and
    /// [`SoapError::NotAnEnvelope`]/[`SoapError::MissingPart`] for documents
    /// that are not SOAP 1.2 messages.
    pub fn parse(xml: &str) -> Result<Self, SoapError> {
        let root = Element::parse(xml)?;
        Self::from_element(&root)
    }

    /// Parse an envelope from an already-built element tree.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Envelope::parse`].
    pub fn from_element(root: &Element) -> Result<Self, SoapError> {
        if !root.name().matches(Some(SOAP_ENV_NS), "Envelope") {
            cov!();
            return Err(SoapError::NotAnEnvelope(format!(
                "root element is {}",
                root.name()
            )));
        }
        let mut extra_headers = Vec::new();
        let mut addressing = MessageHeaders::new();
        if let Some(header) = root.child_ns(SOAP_ENV_NS, "Header") {
            cov!();
            let blocks: Vec<Element> = header.children().into_iter().cloned().collect();
            addressing = MessageHeaders::from_header_blocks(&blocks)?;
            for block in blocks {
                if block.name().namespace() != Some(crate::WSA_NS) {
                    cov!();
                    extra_headers.push(block);
                }
            }
        }
        let body_el = root.child_ns(SOAP_ENV_NS, "Body").ok_or_else(|| {
            cov!();
            SoapError::MissingPart("Body")
        })?;
        let children = body_el.children();
        let body = match children.first() {
            None => {
                cov!();
                Body::Empty
            }
            Some(first) if first.name().matches(Some(SOAP_ENV_NS), "Fault") => {
                cov!();
                Body::Fault(Fault::from_element(first)?)
            }
            Some(first) => {
                cov!();
                Body::Payload((*first).clone())
            }
        };
        Ok(Envelope { addressing, extra_headers, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addressing::EndpointReference;
    use crate::fault::FaultCode;

    fn sample() -> Envelope {
        Envelope::request(
            MessageHeaders::request("http://dest/svc", "urn:app:Op")
                .with_message_id("urn:uuid:42")
                .with_reply_to(EndpointReference::new("http://src/svc")),
            Element::new("op")
                .with_attr("seq", "1")
                .with_child(Element::text_node("value", "hello & goodbye")),
        )
    }

    #[test]
    fn write_xml_matches_tree_serialisation() {
        let ctx = Element::in_ns("wscoor", "urn:wscoor", "CoordinationContext")
            .with_child(Element::text_node("Identifier", "ctx-1"));
        let cases = [
            sample(),
            sample().with_header(ctx),
            Envelope::fault(
                MessageHeaders::request("http://dest", "urn:fault"),
                Fault::new(FaultCode::Sender, "bad request").with_detail(
                    Element::text_node("reason", "x < y & z"),
                ),
            ),
            Envelope::empty(MessageHeaders::new()),
            // Empty property values must render as `<wsa:To></wsa:To>`
            // (open+close), exactly like the tree form.
            Envelope::empty(MessageHeaders::request("", "")),
        ];
        for env in cases {
            let tree = {
                let mut out =
                    String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
                out.push_str(&env.to_element().to_xml_string());
                out
            };
            let mut buf = String::from("stale content to be cleared");
            env.write_xml(&mut buf);
            assert_eq!(buf, tree);
            assert_eq!(env.to_xml(), tree);
        }
    }

    #[test]
    fn roundtrip_request() {
        let env = sample();
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(parsed, env);
    }

    #[test]
    fn roundtrip_with_extra_header() {
        let ctx = Element::in_ns("wscoor", "urn:wscoor", "CoordinationContext")
            .with_child(Element::text_node("Identifier", "ctx-1"));
        let env = sample().with_header(ctx.clone());
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(parsed.header("urn:wscoor", "CoordinationContext").unwrap().child("Identifier").unwrap().text(), "ctx-1");
        assert_eq!(parsed.addressing().message_id(), Some("urn:uuid:42"));
    }

    #[test]
    fn roundtrip_fault() {
        let env = Envelope::fault(
            MessageHeaders::new(),
            Fault::new(FaultCode::MustUnderstand, "gossip header not understood"),
        );
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert!(parsed.is_fault());
        assert_eq!(parsed.as_fault().unwrap().code(), FaultCode::MustUnderstand);
        assert!(parsed.body().is_none());
    }

    #[test]
    fn roundtrip_empty_body() {
        let env = Envelope::empty(MessageHeaders::new().with_relates_to("urn:uuid:9"));
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert!(parsed.body().is_none());
        assert!(!parsed.is_fault());
        assert_eq!(parsed.addressing().relates_to(), Some("urn:uuid:9"));
    }

    #[test]
    fn non_envelope_rejected() {
        assert!(matches!(
            Envelope::parse("<a/>"),
            Err(SoapError::NotAnEnvelope(_))
        ));
    }

    #[test]
    fn missing_body_rejected() {
        let xml = "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"/>";
        assert!(matches!(Envelope::parse(xml), Err(SoapError::MissingPart("Body"))));
    }

    #[test]
    fn take_header_removes() {
        let mut env = sample().with_header(Element::in_ns("g", "urn:g", "Gossip"));
        assert!(env.take_header("urn:g", "Gossip").is_some());
        assert!(env.header("urn:g", "Gossip").is_none());
    }

    #[test]
    fn rewrite_to_for_rerouting() {
        let mut env = sample();
        env.addressing_mut().set_to("http://peer3/svc");
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(parsed.addressing().to(), Some("http://peer3/svc"));
    }

    #[test]
    fn wire_size_reflects_payload() {
        let small = Envelope::request(MessageHeaders::new(), Element::new("a"));
        let big = Envelope::request(
            MessageHeaders::new(),
            Element::new("a").with_text("x".repeat(1000)),
        );
        assert!(big.wire_size() > small.wire_size() + 900);
    }
}
