//! Stock middleware handlers: logging, counting, filtering.
//!
//! Small, composable [`Handler`]s for instrumenting a stack without
//! touching application code — the same extension mechanism the gossip
//! layer uses, demonstrated on cross-cutting concerns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::fault::{Fault, FaultCode};
use crate::handler::{Handler, HandlerOutcome, MessageContext};

/// Counts messages flowing through the stack, by direction.
///
/// The counter handle is shared: keep a clone outside the chain to read.
///
/// ```
/// use wsg_soap::handlers::CountingHandler;
/// use wsg_soap::{HandlerChain, Envelope, MessageHeaders};
/// use wsg_soap::handler::Direction;
/// use wsg_xml::Element;
///
/// let (handler, counters) = CountingHandler::new();
/// let mut chain = HandlerChain::new();
/// chain.push(Box::new(handler));
/// let env = Envelope::request(MessageHeaders::new(), Element::new("op"));
/// chain.process(Direction::Inbound, env, "http://me");
/// assert_eq!(counters.inbound(), 1);
/// assert_eq!(counters.outbound(), 0);
/// ```
#[derive(Debug)]
pub struct CountingHandler {
    counters: Arc<Counters>,
}

/// Shared counters of a [`CountingHandler`].
#[derive(Debug, Default)]
pub struct Counters {
    inbound: AtomicU64,
    outbound: AtomicU64,
}

impl Counters {
    /// Messages seen travelling inbound.
    pub fn inbound(&self) -> u64 {
        self.inbound.load(Ordering::Relaxed)
    }

    /// Messages seen travelling outbound.
    pub fn outbound(&self) -> u64 {
        self.outbound.load(Ordering::Relaxed)
    }
}

impl CountingHandler {
    /// Build the handler and its shared counter handle.
    pub fn new() -> (Self, Arc<Counters>) {
        let counters = Arc::new(Counters::default());
        (CountingHandler { counters: counters.clone() }, counters)
    }
}

impl Handler for CountingHandler {
    fn name(&self) -> &str {
        "counting"
    }

    fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
        use crate::handler::Direction;
        match ctx.direction {
            Direction::Inbound => self.counters.inbound.fetch_add(1, Ordering::Relaxed),
            Direction::Outbound => self.counters.outbound.fetch_add(1, Ordering::Relaxed),
        };
        HandlerOutcome::Continue
    }
}

/// Records one log line per message into a shared buffer.
#[derive(Debug)]
pub struct LoggingHandler {
    log: Arc<Log>,
}

/// An append-only log of handler observations, safe to share across
/// threads.
#[derive(Debug, Default)]
pub struct Log {
    lines: wsg_net::sync::Mutex<Vec<String>>,
}

impl Log {
    /// Append one line.
    pub fn push(&self, line: String) {
        self.lines.lock().push(line);
    }

    /// A copy of all lines logged so far.
    pub fn snapshot(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

/// Shared buffer of a [`LoggingHandler`].
pub type LogBuffer = Arc<Log>;

impl LoggingHandler {
    /// Build the handler and its shared log handle.
    pub fn new() -> (Self, LogBuffer) {
        let log: LogBuffer = Arc::default();
        (LoggingHandler { log: log.clone() }, log)
    }
}

impl Handler for LoggingHandler {
    fn name(&self) -> &str {
        "logging"
    }

    fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
        self.log.push(format!(
            "{:?} {} -> {}",
            ctx.direction,
            ctx.envelope.addressing().action().unwrap_or("?"),
            ctx.envelope.addressing().to().unwrap_or("?"),
        ));
        HandlerOutcome::Continue
    }
}

/// Rejects inbound messages whose Action is not on the allow-list — a
/// minimal service firewall.
#[derive(Debug)]
pub struct ActionFilterHandler {
    allowed: Vec<String>,
}

impl ActionFilterHandler {
    /// Allow only the given action URIs.
    pub fn allowing(allowed: impl IntoIterator<Item = impl Into<String>>) -> Self {
        ActionFilterHandler { allowed: allowed.into_iter().map(Into::into).collect() }
    }
}

impl Handler for ActionFilterHandler {
    fn name(&self) -> &str {
        "action-filter"
    }

    fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
        use crate::handler::Direction;
        if ctx.direction == Direction::Outbound {
            return HandlerOutcome::Continue;
        }
        let action = ctx.envelope.addressing().action().unwrap_or("");
        if self.allowed.iter().any(|a| a == action) {
            HandlerOutcome::Continue
        } else {
            HandlerOutcome::Abort(Fault::new(
                FaultCode::Sender,
                format!("action '{action}' not permitted"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addressing::MessageHeaders;
    use crate::envelope::Envelope;
    use crate::handler::{Direction, Disposition, HandlerChain};
    use wsg_xml::Element;

    fn msg(action: &str) -> Envelope {
        Envelope::request(
            MessageHeaders::request("http://svc", action),
            Element::new("op"),
        )
    }

    #[test]
    fn counting_tracks_both_directions() {
        let (handler, counters) = CountingHandler::new();
        let mut chain = HandlerChain::new();
        chain.push(Box::new(handler));
        chain.process(Direction::Inbound, msg("urn:a"), "http://me");
        chain.process(Direction::Inbound, msg("urn:b"), "http://me");
        chain.process(Direction::Outbound, msg("urn:c"), "http://me");
        assert_eq!(counters.inbound(), 2);
        assert_eq!(counters.outbound(), 1);
    }

    #[test]
    fn logging_captures_actions() {
        let (handler, log) = LoggingHandler::new();
        let mut chain = HandlerChain::new();
        chain.push(Box::new(handler));
        chain.process(Direction::Outbound, msg("urn:notify"), "http://me");
        let lines = log.snapshot();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("urn:notify"));
        assert!(lines[0].contains("http://svc"));
    }

    #[test]
    fn filter_faults_unknown_actions_inbound_only() {
        let mut chain = HandlerChain::new();
        chain.push(Box::new(ActionFilterHandler::allowing(["urn:ok"])));
        let allowed = chain.process(Direction::Inbound, msg("urn:ok"), "http://me");
        assert!(matches!(allowed.disposition, Disposition::Deliver(_)));
        let denied = chain.process(Direction::Inbound, msg("urn:evil"), "http://me");
        match denied.disposition {
            Disposition::Faulted(f) => assert_eq!(f.code(), FaultCode::Sender),
            other => panic!("expected fault, got {other:?}"),
        }
        let outbound = chain.process(Direction::Outbound, msg("urn:evil"), "http://me");
        assert!(matches!(outbound.disposition, Disposition::Deliver(_)));
    }

    #[test]
    fn handlers_compose() {
        let (counting, counters) = CountingHandler::new();
        let (logging, log) = LoggingHandler::new();
        let mut chain = HandlerChain::new();
        chain.push(Box::new(ActionFilterHandler::allowing(["urn:ok"])));
        chain.push(Box::new(counting));
        chain.push(Box::new(logging));
        chain.process(Direction::Inbound, msg("urn:evil"), "http://me");
        chain.process(Direction::Inbound, msg("urn:ok"), "http://me");
        // The filter rejected the first message before the counter saw it.
        assert_eq!(counters.inbound(), 1);
        assert_eq!(log.snapshot().len(), 1);
    }
}
