//! Minimal RFC 4122 v4 UUIDs for WS-Addressing message identifiers.

use std::fmt;
use std::str::FromStr;

use wsg_net::Rng64;

/// A 128-bit version-4 UUID.
///
/// ```
/// use wsg_soap::Uuid;
///
/// let id = Uuid::from_u128(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
/// let text = id.to_string();
/// assert_eq!(text.parse::<Uuid>().unwrap(), id);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Uuid(u128);

impl Uuid {
    /// Build from raw bits, forcing the RFC 4122 version (4) and variant
    /// bits so the result is always a well-formed v4 UUID.
    pub fn from_u128(bits: u128) -> Self {
        let versioned = (bits & !(0xF << 76)) | (0x4 << 76);
        let varianted = (versioned & !(0x3 << 62)) | (0x2 << 62);
        Uuid(varianted)
    }

    /// Generate a random UUID from the given RNG (deterministic runs use a
    /// seeded RNG — important for the reproducible simulator).
    pub fn random<R: Rng64 + ?Sized>(rng: &mut R) -> Self {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        Uuid::from_u128((hi << 64) | lo)
    }

    /// The raw 128 bits.
    pub fn as_u128(&self) -> u128 {
        self.0
    }

    /// Render as a `urn:uuid:...` URI, the form WS-Addressing uses for
    /// `MessageID`.
    pub fn to_urn(&self) -> String {
        format!("urn:uuid:{self}")
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (b >> 96) as u32,
            (b >> 80) as u16,
            (b >> 64) as u16,
            (b >> 48) as u16,
            b & 0xFFFF_FFFF_FFFF
        )
    }
}

/// Error returned when parsing a malformed UUID string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUuidError;

impl fmt::Display for ParseUuidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid uuid syntax")
    }
}

impl std::error::Error for ParseUuidError {}

impl FromStr for Uuid {
    type Err = ParseUuidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_prefix("urn:uuid:").unwrap_or(s);
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 5
            || parts[0].len() != 8
            || parts[1].len() != 4
            || parts[2].len() != 4
            || parts[3].len() != 4
            || parts[4].len() != 12
        {
            return Err(ParseUuidError);
        }
        let mut bits: u128 = 0;
        for part in parts {
            let v = u64::from_str_radix(part, 16).map_err(|_| ParseUuidError)?;
            bits = (bits << (part.len() * 4)) | v as u128;
        }
        Ok(Uuid(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::SplitMix64;

    #[test]
    fn version_and_variant_bits_forced() {
        let id = Uuid::from_u128(0);
        let text = id.to_string();
        // xxxxxxxx-xxxx-4xxx-{8,9,a,b}xxx-xxxxxxxxxxxx
        assert_eq!(&text[14..15], "4");
        assert!(matches!(&text[19..20], "8" | "9" | "a" | "b"));
    }

    #[test]
    fn display_parse_roundtrip() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..100 {
            let id = Uuid::random(&mut rng);
            assert_eq!(id.to_string().parse::<Uuid>().unwrap(), id);
            assert_eq!(id.to_urn().parse::<Uuid>().unwrap(), id);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Uuid::random(&mut SplitMix64::new(42));
        let b = Uuid::random(&mut SplitMix64::new(42));
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed() {
        assert!("not-a-uuid".parse::<Uuid>().is_err());
        assert!("00000000-0000-0000-0000".parse::<Uuid>().is_err());
        assert!("g0000000-0000-4000-8000-000000000000".parse::<Uuid>().is_err());
    }

    #[test]
    fn rfc4122_bits_hold_at_the_bit_level_for_any_input() {
        let mut rng = SplitMix64::new(13);
        // Adversarial corners plus random draws: the version nibble must
        // be 4 and the variant's top two bits must be 0b10 regardless of
        // the raw input bits.
        let corners = [0u128, u128::MAX, 0xF << 76, 0x3 << 62, 1, 1 << 127];
        let randoms = (0..1000).map(|_| {
            let hi = rng.next() as u128;
            let lo = rng.next() as u128;
            (hi << 64) | lo
        });
        for raw in corners.into_iter().chain(randoms) {
            let bits = Uuid::from_u128(raw).as_u128();
            assert_eq!((bits >> 76) & 0xF, 0x4, "version nibble for {raw:#x}");
            assert_eq!((bits >> 62) & 0x3, 0x2, "variant bits for {raw:#x}");
            // Everything outside the forced bits is preserved verbatim.
            let mask = !((0xFu128 << 76) | (0x3u128 << 62));
            assert_eq!(bits & mask, raw & mask, "payload bits for {raw:#x}");
        }
    }

    #[test]
    fn ten_thousand_draws_are_unique() {
        let mut rng = SplitMix64::new(2024);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(Uuid::random(&mut rng)), "collision after {}", seen.len());
        }
    }

    #[test]
    fn urn_formatting_roundtrips_and_is_canonical() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..200 {
            let id = Uuid::random(&mut rng);
            let urn = id.to_urn();
            assert!(urn.starts_with("urn:uuid:"));
            let text = &urn["urn:uuid:".len()..];
            assert_eq!(text.len(), 36);
            assert!(
                text.bytes().enumerate().all(|(i, b)| match i {
                    8 | 13 | 18 | 23 => b == b'-',
                    _ => b.is_ascii_hexdigit() && !b.is_ascii_uppercase(),
                }),
                "non-canonical urn: {urn}"
            );
            // Round-trip through the urn form, and through the bare form
            // embedded in WS-Addressing style comparisons.
            assert_eq!(urn.parse::<Uuid>().unwrap(), id);
            assert_eq!(text.parse::<Uuid>().unwrap(), id);
        }
    }
}
