//! SOAP 1.2 faults.

use std::fmt;

use wsg_xml::Element;

use crate::error::SoapError;
use crate::SOAP_ENV_NS;

/// SOAP 1.2 standard fault codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultCode {
    /// The message did not follow SOAP 1.2 version rules.
    VersionMismatch,
    /// A mustUnderstand header was not understood.
    MustUnderstand,
    /// Encoding problems in the message data.
    DataEncodingUnknown,
    /// The message was malformed from the sender.
    Sender,
    /// The receiver failed while processing.
    Receiver,
}

impl FaultCode {
    /// The local name used on the wire.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultCode::VersionMismatch => "VersionMismatch",
            FaultCode::MustUnderstand => "MustUnderstand",
            FaultCode::DataEncodingUnknown => "DataEncodingUnknown",
            FaultCode::Sender => "Sender",
            FaultCode::Receiver => "Receiver",
        }
    }

    /// Parse from the wire local name (prefix already stripped).
    pub fn parse(text: &str) -> Option<Self> {
        Some(match text {
            "VersionMismatch" => FaultCode::VersionMismatch,
            "MustUnderstand" => FaultCode::MustUnderstand,
            "DataEncodingUnknown" => FaultCode::DataEncodingUnknown,
            "Sender" => FaultCode::Sender,
            "Receiver" => FaultCode::Receiver,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A SOAP 1.2 fault: code, human-readable reason and optional detail.
///
/// ```
/// use wsg_soap::{Fault, FaultCode};
///
/// let fault = Fault::new(FaultCode::Sender, "unknown coordination context");
/// assert_eq!(fault.code(), FaultCode::Sender);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    code: FaultCode,
    reason: String,
    detail: Option<Element>,
}

impl Fault {
    /// A fault with a code and reason text.
    pub fn new(code: FaultCode, reason: impl Into<String>) -> Self {
        Fault { code, reason: reason.into(), detail: None }
    }

    /// Attach application-specific detail.
    pub fn with_detail(mut self, detail: Element) -> Self {
        self.detail = Some(detail);
        self
    }

    /// The fault code.
    pub fn code(&self) -> FaultCode {
        self.code
    }

    /// The reason text.
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// Application detail, if present.
    pub fn detail(&self) -> Option<&Element> {
        self.detail.as_ref()
    }

    /// Serialise as the `env:Fault` body element.
    pub fn to_element(&self) -> Element {
        let mut fault = Element::in_ns("env", SOAP_ENV_NS, "Fault");
        let mut code = Element::in_ns("env", SOAP_ENV_NS, "Code");
        code.push_child(
            Element::in_ns("env", SOAP_ENV_NS, "Value")
                .with_text(format!("env:{}", self.code.as_str())),
        );
        fault.push_child(code);
        let mut reason = Element::in_ns("env", SOAP_ENV_NS, "Reason");
        reason.push_child(
            Element::in_ns("env", SOAP_ENV_NS, "Text")
                .with_attr("lang", "en")
                .with_text(self.reason.clone()),
        );
        fault.push_child(reason);
        if let Some(detail) = &self.detail {
            let mut d = Element::in_ns("env", SOAP_ENV_NS, "Detail");
            d.push_child(detail.clone());
            fault.push_child(d);
        }
        fault
    }

    /// Parse from an `env:Fault` element.
    ///
    /// # Errors
    ///
    /// Fails when the mandatory `Code/Value` is missing or unknown.
    pub fn from_element(element: &Element) -> Result<Self, SoapError> {
        let value = element
            .child_ns(SOAP_ENV_NS, "Code")
            .and_then(|c| c.child_ns(SOAP_ENV_NS, "Value"))
            .map(|v| v.text())
            .ok_or(SoapError::MissingPart("Fault/Code/Value"))?;
        let local = value.rsplit(':').next().unwrap_or(&value);
        let code = FaultCode::parse(local)
            .ok_or_else(|| SoapError::NotAnEnvelope(format!("unknown fault code '{value}'")))?;
        let reason = element
            .child_ns(SOAP_ENV_NS, "Reason")
            .and_then(|r| r.child_ns(SOAP_ENV_NS, "Text"))
            .map(|t| t.text())
            .unwrap_or_default();
        let detail = element
            .child_ns(SOAP_ENV_NS, "Detail")
            .and_then(|d| d.children().first().map(|e| (*e).clone()));
        Ok(Fault { code, reason, detail })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_without_detail() {
        let fault = Fault::new(FaultCode::Receiver, "downstream timeout");
        let parsed = Fault::from_element(&fault.to_element()).unwrap();
        assert_eq!(parsed, fault);
    }

    #[test]
    fn roundtrip_with_detail() {
        let fault = Fault::new(FaultCode::Sender, "bad context")
            .with_detail(Element::text_node("ContextId", "ctx-9"));
        let parsed = Fault::from_element(&fault.to_element()).unwrap();
        assert_eq!(parsed.detail().unwrap().text(), "ctx-9");
    }

    #[test]
    fn missing_code_rejected() {
        let el = Element::in_ns("env", SOAP_ENV_NS, "Fault");
        assert!(Fault::from_element(&el).is_err());
    }

    #[test]
    fn all_codes_roundtrip_wire_names() {
        for code in [
            FaultCode::VersionMismatch,
            FaultCode::MustUnderstand,
            FaultCode::DataEncodingUnknown,
            FaultCode::Sender,
            FaultCode::Receiver,
        ] {
            assert_eq!(FaultCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(FaultCode::parse("NotACode"), None);
    }

    #[test]
    fn display_formats_code_and_reason() {
        let fault = Fault::new(FaultCode::Sender, "nope");
        assert_eq!(fault.to_string(), "Sender: nope");
    }
}
