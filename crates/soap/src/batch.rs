//! Wire-level envelope coalescing: the `urn:ws-gossip:batch` wrapper.
//!
//! The live transport amortises per-POST SOAP/HTTP overhead by draining
//! everything queued for one peer into a single document:
//!
//! ```xml
//! <?xml version="1.0" encoding="UTF-8"?>
//! <wsgb:Batch xmlns:wsgb="urn:ws-gossip:batch">
//!   <wsgb:Msg>…env:Envelope…</wsgb:Msg>
//!   <wsgb:Msg target="/membership">…env:Envelope…</wsgb:Msg>
//! </wsgb:Batch>
//! ```
//!
//! Each `Msg` carries exactly one inner envelope, in FIFO queue order. An
//! optional `target` attribute routes a piggybacked message to a different
//! service route than the POST's own target (heartbeats riding a gossip
//! batch); absent, the message dispatches to the POST target itself.
//!
//! Building a batch never re-parses: the sender already holds each inner
//! envelope as serialised XML, so [`write_batch`] splices the strings
//! (declarations stripped) into a caller-owned scratch buffer. A batch of
//! one message is **never** wrapped by the transport — it posts the inner
//! XML verbatim, byte-identical to the pre-batching wire format (see
//! `wsg_http::runtime`).

use wsg_net::cov;
use wsg_xml::escape::escape_attr_into;
use wsg_xml::{Element, QName, XmlEvent, XmlReader};

use crate::{Envelope, SoapError};

/// Namespace of the batch wrapper vocabulary.
pub const BATCH_NS: &str = "urn:ws-gossip:batch";

/// SOAPAction carried by a multi-message batch POST.
pub const BATCH_ACTION: &str = "urn:ws-gossip:batch/Batch";

/// `wsgb:Batch` (document root).
pub static BATCH: QName = QName::interned(BATCH_NS, "wsgb", "Batch");

/// `wsgb:Msg` (one wrapped envelope).
pub static MSG: QName = QName::interned(BATCH_NS, "wsgb", "Msg");

const XML_DECL: &str = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";

/// One message to be wrapped: already-serialised envelope XML plus the
/// route it should dispatch to (`None` = the POST's own target).
#[derive(Debug, Clone, Copy)]
pub struct BatchItem<'a> {
    /// Dispatch route override, e.g. `"/membership"` for a piggybacked
    /// heartbeat riding a gossip batch.
    pub target: Option<&'a str>,
    /// The serialised inner envelope (with or without XML declaration).
    pub xml: &'a str,
}

/// One message unwrapped from a batch on the receiving side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchedEnvelope {
    /// Dispatch route override (the `target` attribute), if any.
    pub target: Option<String>,
    /// The parsed inner envelope.
    pub envelope: Envelope,
    /// The inner envelope re-serialised standalone (declaration + compact
    /// XML), so downstream services see the same shape as a lone POST.
    pub raw: String,
}

/// Serialise `items` into `out` (cleared first, allocation reused) as one
/// batch document. The inner XML strings are spliced verbatim minus their
/// declarations; order is preserved.
pub fn write_batch(items: &[BatchItem<'_>], out: &mut String) {
    out.clear();
    let body: usize = items.iter().map(|i| i.xml.len() + 24).sum();
    out.reserve(XML_DECL.len() + 64 + body);
    out.push_str(XML_DECL);
    out.push_str("<wsgb:Batch xmlns:wsgb=\"");
    out.push_str(BATCH_NS);
    out.push_str("\">");
    for item in items {
        match item.target {
            None => out.push_str("<wsgb:Msg>"),
            Some(target) => {
                out.push_str("<wsgb:Msg target=\"");
                escape_attr_into(out, target);
                out.push_str("\">");
            }
        }
        out.push_str(strip_declaration(item.xml));
        out.push_str("</wsgb:Msg>");
    }
    out.push_str("</wsgb:Batch>");
}

/// Drop a leading `<?xml …?>` declaration (and surrounding whitespace) so
/// the envelope can be embedded inside the batch document.
fn strip_declaration(xml: &str) -> &str {
    let rest = xml.trim_start();
    if let Some(after) = rest.strip_prefix("<?xml") {
        if let Some(end) = after.find("?>") {
            return after[end + 2..].trim_start();
        }
    }
    rest
}

/// Whether a parsed document root is a batch wrapper.
pub fn is_batch(root: &Element) -> bool {
    root.name().matches(Some(BATCH_NS), "Batch")
}

/// A wire document classified by [`parse_wire`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unbundled {
    /// The document was a `wsgb:Batch`: its messages, in wire order.
    Batch(Vec<BatchedEnvelope>),
    /// Not a batch: the fully parsed document root, for the caller's
    /// ordinary single-envelope path.
    Single(Element),
}

/// Parse a wire document, unwrapping it when it is a batch.
///
/// This is the receive hot path: instead of building the whole batch tree
/// and re-serialising every inner envelope (as [`unbundle`] must, given
/// only a tree), it streams the document once and recovers each message's
/// `raw` form by slicing the sender's exact bytes back out of `wire` —
/// one exact-capacity allocation per message, no re-serialisation. Inner
/// trees are built (and dropped) one message at a time, so a large batch
/// never holds more than one envelope's tree live.
///
/// # Errors
///
/// [`SoapError::Xml`] for malformed XML (including trailing content after
/// the root, matching [`Element::parse`]), and the same [`SoapError::Batch`]
/// / envelope errors as [`unbundle`] for structural violations. Never
/// panics, whatever the input looks like.
pub fn parse_wire(wire: &str) -> Result<Unbundled, SoapError> {
    let mut reader = XmlReader::new(wire);
    let (name, attributes, root_empty) = loop {
        match reader.next_event()? {
            XmlEvent::StartElement { name, attributes, empty } => break (name, attributes, empty),
            XmlEvent::Eof => {
                cov!();
                return Err(SoapError::Batch("document has no root element".into()));
            }
            _ => {}
        }
    };

    if !name.matches(Some(BATCH_NS), "Batch") {
        cov!();
        let root = Element::from_start_event(&mut reader, name, attributes)?;
        drain_epilogue(&mut reader)?;
        return Ok(Unbundled::Single(root));
    }

    let mut out = Vec::new();
    if !root_empty {
        loop {
            match reader.next_event()? {
                XmlEvent::StartElement { name, attributes, empty } => {
                    if !name.matches(Some(BATCH_NS), "Msg") {
                        cov!();
                        return Err(SoapError::Batch(format!("batch carries a {name}")));
                    }
                    cov!();
                    let target = attributes
                        .iter()
                        .find(|a| a.name.namespace().is_none() && a.name.local() == "target")
                        .map(|a| a.value.clone());
                    out.push(read_msg(&mut reader, wire, target, empty)?);
                }
                // `</wsgb:Batch>` — the reader itself balances tags, so an
                // EndElement at this depth can only be the wrapper's.
                XmlEvent::EndElement { .. } => break,
                XmlEvent::Eof => {
                    cov!();
                    return Err(SoapError::Batch("truncated batch".into()));
                }
                // Text and comments between messages are ignored, exactly
                // as the tree walk in `unbundle` ignores non-element nodes.
                _ => {}
            }
        }
    } else {
        cov!();
        // Consume the synthetic EndElement of `<wsgb:Batch/>`.
        reader.next_event()?;
    }
    drain_epilogue(&mut reader)?;
    if out.is_empty() {
        cov!();
        return Err(SoapError::Batch("batch carries no messages".into()));
    }
    Ok(Unbundled::Batch(out))
}

/// Read one `wsgb:Msg`'s content — exactly one inner element — building
/// its tree and slicing its byte span out of `wire` for the `raw` form.
fn read_msg(
    reader: &mut XmlReader<'_>,
    wire: &str,
    target: Option<String>,
    empty: bool,
) -> Result<BatchedEnvelope, SoapError> {
    let mut inner: Option<(Envelope, String)> = None;
    // Bindings declared at or below this scope depth (the batch wrapper's
    // xmlns:wsgb, or anything else on the outer elements) are invisible to
    // a message slice replayed standalone.
    let outer_scope = reader.scope_depth();
    if !empty {
        loop {
            // After the previous event is consumed the cursor sits exactly
            // on the next construct, so for a start tag this is the byte
            // offset of its `<`.
            let start = reader.position();
            reader.reset_binding_watermark();
            match reader.next_event()? {
                XmlEvent::StartElement { name, attributes, .. } => {
                    if inner.is_some() {
                        cov!();
                        return Err(SoapError::Batch(
                            "Msg wraps more than one element (want exactly 1)".into(),
                        ));
                    }
                    cov!();
                    let element = Element::from_start_event(reader, name, attributes)?;
                    let envelope = Envelope::from_element(&element)?;
                    let raw = if reader.binding_watermark() > outer_scope {
                        // The envelope resolved every prefix from its own
                        // declarations: the sender's exact bytes are a
                        // standalone document.
                        cov!();
                        let slice = &wire[start..reader.position()];
                        let mut raw = String::with_capacity(XML_DECL.len() + slice.len());
                        raw.push_str(XML_DECL);
                        raw.push_str(slice);
                        raw
                    } else {
                        // The envelope leaned on a binding inherited from
                        // the batch wrapper (e.g. wsgb:), which the slice
                        // would lose — re-serialise from the tree, which
                        // re-declares everything it uses. (Regression:
                        // fuzz/corpus/regressions/batch/24ffc09407f20b43.)
                        cov!();
                        let serialised = element.to_xml_string();
                        let mut raw = String::with_capacity(XML_DECL.len() + serialised.len());
                        raw.push_str(XML_DECL);
                        raw.push_str(&serialised);
                        raw
                    };
                    inner = Some((envelope, raw));
                }
                XmlEvent::EndElement { .. } => break, // `</wsgb:Msg>`
                XmlEvent::Eof => {
                    cov!();
                    return Err(SoapError::Batch("truncated batch".into()));
                }
                _ => {} // text/comments alongside the envelope are ignored
            }
        }
    } else {
        reader.next_event()?; // synthetic EndElement of `<wsgb:Msg/>`
    }
    match inner {
        Some((envelope, raw)) => Ok(BatchedEnvelope { target, envelope, raw }),
        None => {
            cov!();
            Err(SoapError::Batch("Msg wraps 0 elements (want exactly 1)".into()))
        }
    }
}

/// Reject trailing junk after the root element, as [`Element::parse`] does.
fn drain_epilogue(reader: &mut XmlReader<'_>) -> Result<(), SoapError> {
    loop {
        match reader.next_event()? {
            XmlEvent::Eof => return Ok(()),
            XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction { .. } => {}
            other => {
                cov!();
                return Err(SoapError::Batch(format!("content after root element: {other:?}")));
            }
        }
    }
}

/// Unwrap a batch document into its messages, in wire order.
///
/// # Errors
///
/// [`SoapError::Batch`] when the root is not a `wsgb:Batch`, a child is
/// not a `wsgb:Msg`, a `Msg` does not carry exactly one child element, or
/// the batch is empty; inner envelope violations surface as the usual
/// [`Envelope::from_element`] errors. Never panics, whatever the input
/// tree looks like.
pub fn unbundle(root: &Element) -> Result<Vec<BatchedEnvelope>, SoapError> {
    if !is_batch(root) {
        cov!();
        return Err(SoapError::Batch(format!("root element is {}", root.name())));
    }
    let children = root.children();
    if children.is_empty() {
        cov!();
        return Err(SoapError::Batch("batch carries no messages".into()));
    }
    let mut out = Vec::with_capacity(children.len());
    for child in children {
        if !child.name().matches(Some(BATCH_NS), "Msg") {
            cov!();
            return Err(SoapError::Batch(format!("batch carries a {}", child.name())));
        }
        let wrapped = child.children();
        let inner = match wrapped.as_slice() {
            [only] => *only,
            _ => {
                cov!();
                return Err(SoapError::Batch(format!(
                    "Msg wraps {} elements (want exactly 1)",
                    wrapped.len()
                )));
            }
        };
        cov!();
        let envelope = Envelope::from_element(inner)?;
        let serialised = inner.to_xml_string();
        let mut raw = String::with_capacity(XML_DECL.len() + serialised.len());
        raw.push_str(XML_DECL);
        raw.push_str(&serialised);
        out.push(BatchedEnvelope {
            target: child.attr("target").map(str::to_string),
            envelope,
            raw,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addressing::MessageHeaders;

    fn sample(n: usize) -> Envelope {
        Envelope::request(
            MessageHeaders::request(format!("http://dest/{n}"), format!("urn:app:Op{n}"))
                .with_message_id(format!("urn:uuid:{n}")),
            Element::text_node("tick", format!("payload-{n}")),
        )
    }

    #[test]
    fn round_trips_order_targets_and_content() {
        let envelopes: Vec<Envelope> = (0..4).map(sample).collect();
        let xmls: Vec<String> = envelopes.iter().map(Envelope::to_xml).collect();
        let items: Vec<BatchItem<'_>> = xmls
            .iter()
            .enumerate()
            .map(|(i, xml)| BatchItem {
                target: if i == 2 { Some("/membership") } else { None },
                xml,
            })
            .collect();
        let mut wire = String::new();
        write_batch(&items, &mut wire);

        let root = Element::parse(&wire).unwrap();
        assert!(is_batch(&root));
        let unpacked = unbundle(&root).unwrap();
        assert_eq!(unpacked.len(), 4);
        for (i, msg) in unpacked.iter().enumerate() {
            assert_eq!(msg.envelope, envelopes[i], "message {i} round-trips");
            assert_eq!(
                msg.target.as_deref(),
                if i == 2 { Some("/membership") } else { None }
            );
            // The reconstructed raw is itself a parseable standalone doc
            // describing the same envelope.
            assert_eq!(Envelope::parse(&msg.raw).unwrap(), envelopes[i]);
        }
    }

    #[test]
    fn scratch_buffer_is_reused_and_cleared() {
        let xml = sample(1).to_xml();
        let items = [BatchItem { target: None, xml: &xml }];
        let mut buf = String::from("stale contents from the previous batch");
        write_batch(&items, &mut buf);
        let first = buf.clone();
        write_batch(&items, &mut buf);
        assert_eq!(buf, first);
    }

    #[test]
    fn declaration_is_stripped_once_regardless_of_form() {
        assert_eq!(strip_declaration("<a/>"), "<a/>");
        assert_eq!(
            strip_declaration("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>"),
            "<a/>"
        );
        assert_eq!(strip_declaration("  <?xml version=\"1.0\"?>\n  <a/>"), "<a/>");
        // A truncated declaration is left alone (the parse will reject it).
        assert_eq!(strip_declaration("<?xml version"), "<?xml version");
    }

    #[test]
    fn parse_wire_matches_unbundle_and_slices_sender_bytes() {
        let envelopes: Vec<Envelope> = (0..4).map(sample).collect();
        let xmls: Vec<String> = envelopes.iter().map(Envelope::to_xml).collect();
        let items: Vec<BatchItem<'_>> = xmls
            .iter()
            .enumerate()
            .map(|(i, xml)| BatchItem {
                target: if i == 1 { Some("/membership") } else { None },
                xml,
            })
            .collect();
        let mut wire = String::new();
        write_batch(&items, &mut wire);

        let via_tree = unbundle(&Element::parse(&wire).unwrap()).unwrap();
        let streamed = match parse_wire(&wire).unwrap() {
            Unbundled::Batch(messages) => messages,
            other => panic!("batch wire classified as {other:?}"),
        };
        assert_eq!(streamed.len(), via_tree.len());
        for (i, (s, t)) in streamed.iter().zip(&via_tree).enumerate() {
            assert_eq!(s.envelope, t.envelope, "message {i} envelope");
            assert_eq!(s.target, t.target, "message {i} target");
            // The streamed raw is the sender's own serialisation, byte for
            // byte — not a re-serialisation of the parsed tree.
            assert_eq!(s.raw, xmls[i], "message {i} raw");
        }
    }

    #[test]
    fn parse_wire_hands_back_non_batch_documents() {
        let xml = sample(3).to_xml();
        match parse_wire(&xml).unwrap() {
            Unbundled::Single(root) => {
                assert_eq!(Envelope::from_element(&root).unwrap(), sample(3));
            }
            other => panic!("lone envelope classified as {other:?}"),
        }
        // Trailing junk is rejected just as Element::parse rejects it.
        let trailing = format!("{xml}<extra/>");
        assert!(parse_wire(&trailing).is_err());
        assert!(parse_wire("").is_err());
    }

    #[test]
    fn parse_wire_rejects_what_unbundle_rejects() {
        for bad in [
            "<x/>",
            "<wsgb:Batch xmlns:wsgb=\"urn:ws-gossip:batch\"/>",
            "<wsgb:Batch xmlns:wsgb=\"urn:ws-gossip:batch\"><other/></wsgb:Batch>",
            "<wsgb:Batch xmlns:wsgb=\"urn:ws-gossip:batch\"><wsgb:Msg/></wsgb:Batch>",
        ] {
            match parse_wire(bad) {
                Ok(Unbundled::Single(_)) => assert_eq!(bad, "<x/>", "only <x/> is a document"),
                Ok(Unbundled::Batch(_)) => panic!("{bad} accepted as a batch"),
                Err(SoapError::Batch(_)) => {}
                Err(other) => panic!("{bad} failed with {other}"),
            }
        }
        let not_envelope =
            "<wsgb:Batch xmlns:wsgb=\"urn:ws-gossip:batch\"><wsgb:Msg><x/></wsgb:Msg></wsgb:Batch>";
        assert!(matches!(parse_wire(not_envelope), Err(SoapError::NotAnEnvelope(_))));
    }

    #[test]
    fn rejects_malformed_wrappers() {
        let not_batch = Element::parse("<x/>").unwrap();
        assert!(matches!(unbundle(&not_batch), Err(SoapError::Batch(_))));

        let empty =
            Element::parse("<wsgb:Batch xmlns:wsgb=\"urn:ws-gossip:batch\"/>").unwrap();
        assert!(matches!(unbundle(&empty), Err(SoapError::Batch(_))));

        let wrong_child = Element::parse(
            "<wsgb:Batch xmlns:wsgb=\"urn:ws-gossip:batch\"><other/></wsgb:Batch>",
        )
        .unwrap();
        assert!(matches!(unbundle(&wrong_child), Err(SoapError::Batch(_))));

        let empty_msg = Element::parse(
            "<wsgb:Batch xmlns:wsgb=\"urn:ws-gossip:batch\"><wsgb:Msg/></wsgb:Batch>",
        )
        .unwrap();
        assert!(matches!(unbundle(&empty_msg), Err(SoapError::Batch(_))));

        let not_envelope = Element::parse(
            "<wsgb:Batch xmlns:wsgb=\"urn:ws-gossip:batch\"><wsgb:Msg><x/></wsgb:Msg></wsgb:Batch>",
        )
        .unwrap();
        assert!(matches!(
            unbundle(&not_envelope),
            Err(SoapError::NotAnEnvelope(_))
        ));
    }
}
