//! The handler chain — the paper's "compliant middleware stack".
//!
//! In WS-Gossip (paper §3) a *Disseminator* is a node whose application is
//! oblivious to gossip: the gossip behaviour lives in "an additional
//! handler, the gossip layer, in the middleware stack, which intercepts the
//! outgoing message and re-routes it to selected destinations". This module
//! provides that stack: an ordered chain of [`Handler`]s through which every
//! message passes in both directions, with handlers able to pass, consume,
//! fault, or intercept-and-reroute.

use std::collections::HashMap;

use wsg_xml::QName;

use crate::envelope::Envelope;
use crate::fault::{Fault, FaultCode};
use crate::SOAP_ENV_NS;

/// Direction a message is travelling through the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Arriving from the network towards the application.
    Inbound,
    /// Leaving the application towards the network.
    Outbound,
}

/// The message being processed plus cross-handler state.
#[derive(Debug)]
pub struct MessageContext {
    /// Which way the message is travelling.
    pub direction: Direction,
    /// The message; handlers may mutate it in place.
    pub envelope: Envelope,
    /// Address of the local endpoint processing the message.
    pub local_address: String,
    properties: HashMap<String, String>,
    sends: Vec<Envelope>,
}

impl MessageContext {
    /// A context for a message at `local_address`.
    pub fn new(direction: Direction, envelope: Envelope, local_address: impl Into<String>) -> Self {
        MessageContext {
            direction,
            envelope,
            local_address: local_address.into(),
            properties: HashMap::new(),
            sends: Vec::new(),
        }
    }

    /// Emit an additional envelope to be sent to the network once the
    /// chain finishes — the interception/re-routing primitive: the gossip
    /// layer queues copies addressed (via their `To` property) to selected
    /// peers, then either lets the original continue or consumes it.
    pub fn send_envelope(&mut self, envelope: Envelope) {
        self.sends.push(envelope);
    }

    /// Set a cross-handler property (e.g. "gossip.round").
    pub fn set_property(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.properties.insert(key.into(), value.into());
    }

    /// Read a cross-handler property.
    pub fn property(&self, key: &str) -> Option<&str> {
        self.properties.get(key).map(String::as_str)
    }
}

/// What a handler decided about the message.
#[derive(Debug)]
pub enum HandlerOutcome {
    /// Pass the (possibly mutated) message to the next handler.
    Continue,
    /// The handler consumed the message; stop the chain, nothing is
    /// delivered further (envelopes queued via
    /// [`MessageContext::send_envelope`] are still sent).
    Consumed,
    /// Abort processing with a fault.
    Abort(Fault),
}

/// A middleware handler.
///
/// Handlers are invoked in chain order for outbound messages and in the
/// same order for inbound ones (symmetric stacks keep reasoning simple; the
/// gossip layer works in either position).
pub trait Handler: Send {
    /// Short name used in traces ("gossip", "logging", ...).
    fn name(&self) -> &str;

    /// Process a message travelling through the stack.
    fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome;

    /// Whether this handler understands the given header block name, for
    /// SOAP `mustUnderstand` enforcement.
    fn understands(&self, _header: &QName) -> bool {
        false
    }
}

/// How the chain left the original message.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Disposition {
    /// Deliver the message to its natural destination (application for
    /// inbound, network for outbound).
    Deliver(Envelope),
    /// A handler consumed the message.
    Consumed,
    /// Processing aborted with this fault.
    Faulted(Fault),
}

/// Final result of pushing a message through the chain: what happens to
/// the original, plus any envelopes handlers asked to send (re-routed
/// copies, protocol messages such as registrations).
#[derive(Debug)]
pub struct ChainResult {
    /// Fate of the original message.
    pub disposition: Disposition,
    /// Envelopes to hand to the network, in emission order.
    pub sends: Vec<Envelope>,
}

/// An ordered stack of handlers.
///
/// ```
/// use wsg_soap::{HandlerChain, Handler, HandlerOutcome, MessageContext};
/// use wsg_soap::{Envelope, MessageHeaders};
/// use wsg_soap::handler::{ChainResult, Direction};
/// use wsg_xml::Element;
///
/// struct Tag;
/// impl Handler for Tag {
///     fn name(&self) -> &str { "tag" }
///     fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
///         ctx.set_property("seen", "yes");
///         HandlerOutcome::Continue
///     }
/// }
///
/// let mut chain = HandlerChain::new();
/// chain.push(Box::new(Tag));
/// let env = Envelope::request(MessageHeaders::new(), Element::new("op"));
/// let result = chain.process(Direction::Outbound, env, "http://me");
/// assert!(matches!(result.disposition, wsg_soap::handler::Disposition::Deliver(_)));
/// assert!(result.sends.is_empty());
/// ```
#[derive(Default)]
pub struct HandlerChain {
    handlers: Vec<Box<dyn Handler>>,
}

impl std::fmt::Debug for HandlerChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandlerChain")
            .field("handlers", &self.handlers.iter().map(|h| h.name().to_string()).collect::<Vec<_>>())
            .finish()
    }
}

impl HandlerChain {
    /// An empty chain (all messages pass through untouched).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a handler at the end of the chain.
    pub fn push(&mut self, handler: Box<dyn Handler>) {
        self.handlers.push(handler);
    }

    /// Insert a handler at the front of the chain (closest to the
    /// application).
    pub fn push_front(&mut self, handler: Box<dyn Handler>) {
        self.handlers.insert(0, handler);
    }

    /// Number of installed handlers.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// Whether the chain has no handlers.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }

    /// Names of installed handlers, in order.
    pub fn handler_names(&self) -> Vec<&str> {
        self.handlers.iter().map(|h| h.name()).collect()
    }

    /// Push a message through the chain.
    ///
    /// For [`Direction::Inbound`] messages, SOAP `mustUnderstand` is
    /// enforced first: any header block carrying
    /// `env:mustUnderstand="true"` must be claimed by some handler's
    /// [`Handler::understands`], otherwise the result is a
    /// `MustUnderstand` fault (WS-Addressing blocks are understood
    /// natively).
    pub fn process(
        &mut self,
        direction: Direction,
        envelope: Envelope,
        local_address: impl Into<String>,
    ) -> ChainResult {
        if direction == Direction::Inbound {
            if let Some(fault) = self.check_must_understand(&envelope) {
                return ChainResult {
                    disposition: Disposition::Faulted(fault),
                    sends: Vec::new(),
                };
            }
        }
        let mut ctx = MessageContext::new(direction, envelope, local_address);
        for handler in &mut self.handlers {
            match handler.process(&mut ctx) {
                HandlerOutcome::Continue => {}
                HandlerOutcome::Consumed => {
                    return ChainResult { disposition: Disposition::Consumed, sends: ctx.sends }
                }
                HandlerOutcome::Abort(fault) => {
                    return ChainResult {
                        disposition: Disposition::Faulted(fault),
                        sends: ctx.sends,
                    }
                }
            }
        }
        ChainResult {
            disposition: Disposition::Deliver(ctx.envelope),
            sends: ctx.sends,
        }
    }

    fn check_must_understand(&self, envelope: &Envelope) -> Option<Fault> {
        for header in envelope.headers() {
            let must = header
                .attr_ns(SOAP_ENV_NS, "mustUnderstand")
                .map(|v| v == "true" || v == "1")
                .unwrap_or(false);
            if !must {
                continue;
            }
            let understood = self.handlers.iter().any(|h| h.understands(header.name()));
            if !understood {
                return Some(Fault::new(
                    FaultCode::MustUnderstand,
                    format!("header {} not understood", header.name()),
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addressing::MessageHeaders;
    use wsg_xml::Element;

    fn env() -> Envelope {
        Envelope::request(
            MessageHeaders::request("http://dest", "urn:op"),
            Element::new("op"),
        )
    }

    struct Counter {
        seen: usize,
    }

    impl Handler for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn process(&mut self, _ctx: &mut MessageContext) -> HandlerOutcome {
            self.seen += 1;
            HandlerOutcome::Continue
        }
    }

    struct Sink;
    impl Handler for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn process(&mut self, _ctx: &mut MessageContext) -> HandlerOutcome {
            HandlerOutcome::Consumed
        }
    }

    /// Intercepts: queues two re-routed copies and consumes the original.
    struct Splitter;
    impl Handler for Splitter {
        fn name(&self) -> &str {
            "splitter"
        }
        fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
            for peer in ["http://p1", "http://p2"] {
                let mut copy = ctx.envelope.clone();
                copy.addressing_mut().set_to(peer);
                ctx.send_envelope(copy);
            }
            HandlerOutcome::Consumed
        }
    }

    /// Forks: queues one copy but lets the original continue (the
    /// disseminator pattern: deliver to the app AND forward).
    struct Forker;
    impl Handler for Forker {
        fn name(&self) -> &str {
            "forker"
        }
        fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
            let mut copy = ctx.envelope.clone();
            copy.addressing_mut().set_to("http://peer");
            ctx.send_envelope(copy);
            HandlerOutcome::Continue
        }
    }

    struct Understands(QName);
    impl Handler for Understands {
        fn name(&self) -> &str {
            "understander"
        }
        fn process(&mut self, _ctx: &mut MessageContext) -> HandlerOutcome {
            HandlerOutcome::Continue
        }
        fn understands(&self, header: &QName) -> bool {
            *header == self.0
        }
    }

    #[test]
    fn empty_chain_delivers() {
        let mut chain = HandlerChain::new();
        let result = chain.process(Direction::Outbound, env(), "http://me");
        assert!(matches!(result.disposition, Disposition::Deliver(_)));
        assert!(result.sends.is_empty());
    }

    #[test]
    fn consumed_stops_chain_but_keeps_sends() {
        let mut chain = HandlerChain::new();
        chain.push(Box::new(Splitter));
        chain.push(Box::new(Sink));
        let result = chain.process(Direction::Outbound, env(), "http://me");
        assert!(matches!(result.disposition, Disposition::Consumed));
        let tos: Vec<_> = result
            .sends
            .iter()
            .map(|e| e.addressing().to().unwrap().to_string())
            .collect();
        assert_eq!(tos, ["http://p1", "http://p2"]);
    }

    #[test]
    fn fork_delivers_and_sends() {
        let mut chain = HandlerChain::new();
        chain.push(Box::new(Forker));
        let result = chain.process(Direction::Inbound, env(), "http://me");
        assert!(matches!(result.disposition, Disposition::Deliver(_)));
        assert_eq!(result.sends.len(), 1);
        assert_eq!(result.sends[0].addressing().to(), Some("http://peer"));
    }

    #[test]
    fn must_understand_faults_without_claimer() {
        let header = Element::in_ns("g", "urn:gossip", "Gossip")
            .with_attr(QName::with_ns(SOAP_ENV_NS, "mustUnderstand").with_prefix("env"), "true");
        let message = env().with_header(header);
        let mut chain = HandlerChain::new();
        let result = chain.process(Direction::Inbound, message, "http://me");
        match result.disposition {
            Disposition::Faulted(f) => assert_eq!(f.code(), FaultCode::MustUnderstand),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn must_understand_satisfied_by_handler() {
        let name = QName::with_ns("urn:gossip", "Gossip");
        let header = Element::in_ns("g", "urn:gossip", "Gossip")
            .with_attr(QName::with_ns(SOAP_ENV_NS, "mustUnderstand").with_prefix("env"), "1");
        let message = env().with_header(header);
        let mut chain = HandlerChain::new();
        chain.push(Box::new(Understands(name)));
        let result = chain.process(Direction::Inbound, message, "http://me");
        assert!(matches!(result.disposition, Disposition::Deliver(_)));
    }

    #[test]
    fn must_understand_not_enforced_outbound() {
        let header = Element::in_ns("g", "urn:gossip", "Gossip")
            .with_attr(QName::with_ns(SOAP_ENV_NS, "mustUnderstand").with_prefix("env"), "true");
        let message = env().with_header(header);
        let mut chain = HandlerChain::new();
        let result = chain.process(Direction::Outbound, message, "http://me");
        assert!(matches!(result.disposition, Disposition::Deliver(_)));
    }

    #[test]
    fn handlers_run_in_order_and_share_properties() {
        struct SetP;
        impl Handler for SetP {
            fn name(&self) -> &str {
                "set"
            }
            fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
                ctx.set_property("k", "v");
                HandlerOutcome::Continue
            }
        }
        struct CheckP;
        impl Handler for CheckP {
            fn name(&self) -> &str {
                "check"
            }
            fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
                assert_eq!(ctx.property("k"), Some("v"));
                HandlerOutcome::Consumed
            }
        }
        let mut chain = HandlerChain::new();
        chain.push(Box::new(SetP));
        chain.push(Box::new(CheckP));
        let result = chain.process(Direction::Inbound, env(), "http://me");
        assert!(matches!(result.disposition, Disposition::Consumed));
    }

    #[test]
    fn abort_reports_fault_and_partial_sends() {
        struct Aborter;
        impl Handler for Aborter {
            fn name(&self) -> &str {
                "aborter"
            }
            fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
                let copy = ctx.envelope.clone();
                ctx.send_envelope(copy);
                HandlerOutcome::Abort(Fault::new(FaultCode::Receiver, "boom"))
            }
        }
        let mut chain = HandlerChain::new();
        chain.push(Box::new(Aborter));
        let result = chain.process(Direction::Inbound, env(), "http://me");
        assert!(matches!(result.disposition, Disposition::Faulted(_)));
        assert_eq!(result.sends.len(), 1);
    }

    #[test]
    fn push_front_reorders() {
        let mut chain = HandlerChain::new();
        chain.push(Box::new(Counter { seen: 0 }));
        chain.push_front(Box::new(Sink));
        assert_eq!(chain.handler_names(), ["sink", "counter"]);
    }
}
