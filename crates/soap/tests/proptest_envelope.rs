//! Property tests: arbitrary SOAP envelopes round-trip through wire XML.
//! Runs on the in-tree `wsg_net::check` harness.

use wsg_net::check::{run, Gen};
use wsg_net::{prop_assert, prop_assert_eq};

use wsg_soap::{EndpointReference, Envelope, Fault, FaultCode, MessageHeaders};
use wsg_xml::Element;

fn uri(g: &mut Gen) -> String {
    const ALPHA: &[char] = &['a', 'c', 'g', 'n', 'p', 's', 'w', 'z'];
    const ALNUM: &[char] = &['a', 'e', 'k', 'v', 'x', '0', '3', '7'];
    let host: String = (0..g.usize(1..=8)).map(|_| *g.pick(ALPHA)).collect();
    let mut out = format!("http://{host}");
    for _ in 0..g.usize(0..=3) {
        let seg: String = (0..g.usize(1..=6)).map(|_| *g.pick(ALNUM)).collect();
        out.push('/');
        out.push_str(&seg);
    }
    out
}

fn text(g: &mut Gen) -> String {
    // XML-legal printable text including characters that need escaping.
    g.ascii_string(60)
}

fn name(g: &mut Gen) -> String {
    const FIRST: &[char] = &['a', 'f', 'm', 't', 'B', 'R', '_'];
    const REST: &[char] = &['a', 'd', 'i', 'o', 'u', 'N', '2', '8', '_'];
    let mut s = g.pick(FIRST).to_string();
    s.extend((0..g.len_in(10)).map(|_| *g.pick(REST)));
    s
}

fn arb_headers(g: &mut Gen) -> MessageHeaders {
    let mut headers = MessageHeaders::new();
    if g.bool(0.5) {
        let (to, action) = (uri(g), uri(g));
        headers = MessageHeaders::request(to, action);
    }
    if g.bool(0.5) {
        const HEX: &[char] = &['0', '1', '5', '9', 'a', 'c', 'e', 'f'];
        let id: String = (0..8).map(|_| *g.pick(HEX)).collect();
        headers = headers.with_message_id(format!("urn:uuid:{id}"));
    }
    if g.bool(0.5) {
        headers = headers.with_reply_to(EndpointReference::new(uri(g)));
    }
    headers
}

fn arb_payload(g: &mut Gen) -> Element {
    let mut el = Element::new(name(g));
    for _ in 0..g.len_in(3) {
        el.set_attr(name(g), text(g));
    }
    let body = text(g);
    if !body.is_empty() {
        el.set_text(body);
    }
    el
}

#[test]
fn request_envelopes_roundtrip() {
    run("request_envelopes_roundtrip", 64, |g| {
        let envelope = Envelope::request(arb_headers(g), arb_payload(g));
        let parsed = Envelope::parse(&envelope.to_xml()).expect("own output parses");
        prop_assert_eq!(parsed, envelope);
        Ok(())
    });
}

#[test]
fn envelopes_with_extra_headers_roundtrip() {
    run("envelopes_with_extra_headers_roundtrip", 64, |g| {
        let headers = arb_headers(g);
        let payload = arb_payload(g);
        let extra = arb_payload(g);
        let block = Element::in_ns("x", "urn:extension", "Block").with_child(extra);
        let envelope = Envelope::request(headers, payload).with_header(block);
        let parsed = Envelope::parse(&envelope.to_xml()).expect("parses");
        prop_assert_eq!(parsed.headers().len(), 1);
        prop_assert_eq!(parsed, envelope);
        Ok(())
    });
}

#[test]
fn fault_envelopes_roundtrip() {
    run("fault_envelopes_roundtrip", 64, |g| {
        let fault = Fault::new(FaultCode::Receiver, text(g)).with_detail(arb_payload(g));
        let envelope = Envelope::fault(MessageHeaders::new(), fault);
        let parsed = Envelope::parse(&envelope.to_xml()).expect("parses");
        prop_assert!(parsed.is_fault());
        prop_assert_eq!(parsed, envelope);
        Ok(())
    });
}

#[test]
fn wire_size_matches_serialisation() {
    run("wire_size_matches_serialisation", 64, |g| {
        let envelope = Envelope::request(arb_headers(g), arb_payload(g));
        prop_assert_eq!(envelope.wire_size(), envelope.to_xml().len());
        Ok(())
    });
}

#[test]
fn parser_survives_arbitrary_bytes() {
    run("parser_survives_arbitrary_bytes", 64, |g| {
        let len = g.len_in(300);
        let junk: String = (0..len)
            .map(|_| char::from_u32(g.u32(0x01..=0xFFFF)).unwrap_or('\u{FFFD}'))
            .collect();
        let _ = Envelope::parse(&junk); // error is fine, panic is not
        Ok(())
    });
}
