//! Property tests: arbitrary SOAP envelopes round-trip through wire XML.

use proptest::prelude::*;

use wsg_soap::{EndpointReference, Envelope, Fault, FaultCode, MessageHeaders};
use wsg_xml::Element;

fn uri() -> impl Strategy<Value = String> {
    "[a-z]{1,8}(/[a-z0-9]{1,6}){0,3}".prop_map(|path| format!("http://{path}"))
}

fn text() -> impl Strategy<Value = String> {
    // XML-legal printable text including characters that need escaping.
    "[ -~]{0,60}"
}

fn arb_headers() -> impl Strategy<Value = MessageHeaders> {
    (
        proptest::option::of(uri()),
        proptest::option::of(uri()),
        proptest::option::of("[a-f0-9]{8}"),
        proptest::option::of(uri()),
    )
        .prop_map(|(to, action, msg_id, reply_to)| {
            let mut headers = MessageHeaders::new();
            if let (Some(to), Some(action)) = (&to, &action) {
                headers = MessageHeaders::request(to.clone(), action.clone());
            }
            if let Some(id) = msg_id {
                headers = headers.with_message_id(format!("urn:uuid:{id}"));
            }
            if let Some(rt) = reply_to {
                headers = headers.with_reply_to(EndpointReference::new(rt));
            }
            headers
        })
}

fn arb_payload() -> impl Strategy<Value = Element> {
    (
        "[a-zA-Z_][a-zA-Z0-9_]{0,10}",
        text(),
        proptest::collection::vec(("[a-zA-Z_][a-zA-Z0-9]{0,8}", text()), 0..4),
    )
        .prop_map(|(name, body, attrs)| {
            let mut el = Element::new(name);
            for (k, v) in attrs {
                el.set_attr(k, v);
            }
            if !body.is_empty() {
                el.set_text(body);
            }
            el
        })
}

proptest! {
    #[test]
    fn request_envelopes_roundtrip(headers in arb_headers(), payload in arb_payload()) {
        let envelope = Envelope::request(headers, payload);
        let parsed = Envelope::parse(&envelope.to_xml()).expect("own output parses");
        prop_assert_eq!(parsed, envelope);
    }

    #[test]
    fn envelopes_with_extra_headers_roundtrip(
        headers in arb_headers(),
        payload in arb_payload(),
        extra in arb_payload(),
    ) {
        let block = Element::in_ns("x", "urn:extension", "Block").with_child(extra);
        let envelope = Envelope::request(headers, payload).with_header(block);
        let parsed = Envelope::parse(&envelope.to_xml()).expect("parses");
        prop_assert_eq!(parsed.headers().len(), 1);
        prop_assert_eq!(parsed, envelope);
    }

    #[test]
    fn fault_envelopes_roundtrip(reason in text(), detail in arb_payload()) {
        let fault = Fault::new(FaultCode::Receiver, reason).with_detail(detail);
        let envelope = Envelope::fault(MessageHeaders::new(), fault);
        let parsed = Envelope::parse(&envelope.to_xml()).expect("parses");
        prop_assert!(parsed.is_fault());
        prop_assert_eq!(parsed, envelope);
    }

    #[test]
    fn wire_size_matches_serialisation(headers in arb_headers(), payload in arb_payload()) {
        let envelope = Envelope::request(headers, payload);
        prop_assert_eq!(envelope.wire_size(), envelope.to_xml().len());
    }

    #[test]
    fn parser_survives_arbitrary_bytes(junk in "\\PC{0,300}") {
        let _ = Envelope::parse(&junk); // error is fine, panic is not
    }
}
