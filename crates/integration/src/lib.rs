//! # wsg-integration
//!
//! Carrier crate for the repository-level integration tests (`tests/`) and
//! runnable examples (`examples/`), which span every WS-Gossip crate. It
//! exports nothing; see the test and example sources for the interesting
//! content.
