//! Exhaustive model-checking of [`MembershipPlane`] under concurrent
//! heartbeat handling, `note_unreachable` condemnation, and view reads
//! (ISSUE 9): condemnation must be monotone — a *stale* heartbeat (one
//! whose counter has not progressed) can never resurrect a condemned
//! member, in any interleaving — and view/tombstone state must stay
//! mutually consistent when a fresh heartbeat races a condemnation.
//!
//! Compiled only under `RUSTFLAGS="--cfg wsg_model"`; see DESIGN.md §13.
#![cfg(wsg_model)]

use std::net::SocketAddr;
use std::sync::Arc;

use wsg_cluster::{ClusterConfig, ClusterMessage, MemberEntry, MembershipPlane};
use wsg_membership::MemberStatus;
use wsg_net::time::ManualClock;
use wsg_net::NodeId;
use wsg_model::{thread, Explorer};

fn addr(port: u16) -> SocketAddr {
    format!("127.0.0.1:{port}").parse().unwrap()
}

fn plane_with_peer(peer_heartbeat: u64) -> Arc<MembershipPlane> {
    let clock = Arc::new(ManualClock::new());
    let plane = Arc::new(MembershipPlane::new(
        NodeId(0),
        clock,
        ClusterConfig::default(),
        7,
    ));
    plane.register_self(addr(9000));
    plane.bootstrap(&[MemberEntry { id: NodeId(1), addr: addr(9001), heartbeat: peer_heartbeat }]);
    plane
}

#[test]
fn stale_heartbeat_never_resurrects_a_condemned_member() {
    // Peer 1 was admitted at heartbeat 5. One thread folds in a *stale*
    // heartbeat (still 5); another condemns the peer's address. In every
    // interleaving the condemnation must win: the stale counter carries
    // no fresh evidence, so the member stays dead — including across a
    // subsequent tick (which re-applies standing condemnations).
    let outcome = Explorer::new()
        .preemption_bound(3)
        .max_schedules(500_000)
        .samples(16)
        .explore(|| {
            let plane = plane_with_peer(5);
            let gossip = {
                let plane = Arc::clone(&plane);
                thread::spawn(move || {
                    let stale = ClusterMessage::Heartbeat(vec![MemberEntry {
                        id: NodeId(1),
                        addr: addr(9001),
                        heartbeat: 5,
                    }]);
                    plane.handle(&stale);
                })
            };
            let detector = {
                let plane = Arc::clone(&plane);
                thread::spawn(move || plane.note_unreachable(addr(9001)))
            };
            gossip.join().unwrap();
            let condemned = detector.join().unwrap();
            assert_eq!(condemned, Some(NodeId(1)), "the address is known, so it must condemn");
            assert_eq!(
                plane.status_of(NodeId(1)),
                Some(MemberStatus::Dead),
                "a stale heartbeat resurrected a condemned member"
            );
            let _ = plane.tick();
            assert_eq!(
                plane.status_of(NodeId(1)),
                Some(MemberStatus::Dead),
                "condemnation must be sticky across ticks until the counter progresses"
            );
            assert_eq!(plane.dead_addrs(), vec![addr(9001)]);
        });
    assert!(
        outcome.failure.is_none(),
        "condemnation raced a stale heartbeat:\n{}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    assert!(outcome.exhausted, "({} schedules run)", outcome.schedules);
}

#[test]
fn fresh_heartbeat_racing_condemnation_stays_consistent() {
    // Here the heartbeat *has* progressed (6 > 5), so both final states
    // are legal — condemned-then-refreshed (alive) or refreshed-then-
    // condemned (dead) — but whichever wins, the view and the tombstone
    // bookkeeping must agree, in every interleaving: a dead member's
    // address is evictable, an alive member's is not, and concurrent
    // view reads never observe anything else.
    let outcome = Explorer::new()
        .preemption_bound(2)
        .max_schedules(500_000)
        .samples(16)
        .explore(|| {
            let plane = plane_with_peer(5);
            let gossip = {
                let plane = Arc::clone(&plane);
                thread::spawn(move || {
                    let fresh = ClusterMessage::Heartbeat(vec![MemberEntry {
                        id: NodeId(1),
                        addr: addr(9001),
                        heartbeat: 6,
                    }]);
                    plane.handle(&fresh);
                })
            };
            let detector = {
                let plane = Arc::clone(&plane);
                thread::spawn(move || plane.note_unreachable(addr(9001)))
            };
            // A concurrent reader: any status it sees must be a valid
            // member status (never a torn or forgotten entry).
            let seen = plane.status_of(NodeId(1));
            assert!(seen.is_some(), "member 1 must never vanish mid-race: {seen:?}");
            gossip.join().unwrap();
            detector.join().unwrap();
            match plane.status_of(NodeId(1)) {
                Some(MemberStatus::Dead) => {
                    assert_eq!(
                        plane.dead_addrs(),
                        vec![addr(9001)],
                        "dead member's address must be evictable"
                    );
                }
                Some(MemberStatus::Alive) => {
                    assert!(
                        plane.dead_addrs().is_empty(),
                        "alive member's address must not be evicted"
                    );
                }
                other => panic!("member 1 must end the race alive or dead, got {other:?}"),
            }
        });
    assert!(
        outcome.failure.is_none(),
        "fresh-heartbeat race broke view/tombstone consistency:\n{}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    assert!(outcome.exhausted, "({} schedules run)", outcome.schedules);
}
