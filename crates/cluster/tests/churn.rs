//! Socket-level churn: a small fleet with a no-op application protocol,
//! exercising join bootstrap, crash detection, graceful leave and the
//! membership metrics — everything but the gossip dissemination layer
//! (which `tests/live_churn.rs` at the workspace root covers).

use std::collections::BTreeSet;
use std::sync::Arc;

use wsg_cluster::{ClusterConfig, ClusterRuntime, MembershipPlane};
use wsg_http::NetRuntimeConfig;
use wsg_net::{Context, NodeId, PeerLiveness, Protocol, SimDuration};

/// An application protocol that does nothing: these tests are about the
/// membership plane underneath it.
#[derive(Debug, Default)]
struct Idle;

impl Protocol for Idle {
    type Message = String;
    fn on_message(&mut self, _from: NodeId, _msg: String, _ctx: &mut dyn Context<String>) {}
}

const INTERVAL_MS: u64 = 20;

fn fleet(seed: u64) -> ClusterRuntime<Idle> {
    ClusterRuntime::new(
        seed,
        NetRuntimeConfig::default(),
        ClusterConfig::for_interval(SimDuration::from_millis(INTERVAL_MS)),
    )
}

/// Poll `cond` every gossip interval until it holds, for up to ~15s of
/// wall-clock; panics with `what` on timeout.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..(15_000 / INTERVAL_MS) {
        if cond() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(INTERVAL_MS));
    }
    panic!("timed out waiting for {what}");
}

fn live_set(plane: &Arc<MembershipPlane>) -> BTreeSet<NodeId> {
    plane.live_members().into_iter().collect()
}

#[test]
fn fleet_converges_through_joins_crashes_and_leaves() {
    let mut fleet = fleet(42);
    let seed = fleet.add_seed(|_| Idle);
    for _ in 0..4 {
        fleet.add_node(seed, |_| Idle).expect("join via seed");
    }
    let ids: Vec<NodeId> = (0..5).map(NodeId).collect();

    // Everyone discovers everyone through heartbeat gossip alone (only
    // the seed was told about the joiners directly).
    let full: BTreeSet<NodeId> = ids.iter().copied().collect();
    wait_for("full membership at every node", || {
        ids.iter().all(|id| live_set(&fleet.plane(*id)) == full)
    });

    // Crash one node: survivors must *detect* it (φ accrual silence or a
    // refused heartbeat) with no announcement.
    let crashed = NodeId(4);
    fleet.crash(crashed).expect("crash a live node");
    let survivors: Vec<NodeId> = (0..4).map(NodeId).collect();
    wait_for("crash detected by all survivors", || {
        survivors.iter().all(|id| !fleet.plane(*id).is_live(crashed))
    });

    // Graceful leave: the announcement tombstones the leaver quickly and
    // for good — no resurrection from stale heartbeats in flight.
    let leaver = NodeId(3);
    fleet.leave(leaver).expect("leave with a live node");
    let survivors: Vec<NodeId> = (0..3).map(NodeId).collect();
    wait_for("leave observed by all survivors", || {
        survivors.iter().all(|id| !fleet.plane(*id).is_live(leaver))
    });

    // A late joiner bootstraps off the seed and the whole surviving
    // fleet agrees on the final live set.
    let joined = fleet.add_node(seed, |_| Idle).expect("late join");
    let expected: BTreeSet<NodeId> =
        survivors.iter().copied().chain([joined]).collect();
    wait_for("post-churn agreement", || {
        expected.iter().all(|id| live_set(&fleet.plane(*id)) == expected)
    });

    // The membership gauges mirror the converged view.
    let text = fleet.registry_of(seed).render();
    assert!(text.contains("wsg_membership_alive 4\n"), "{text}");
    assert!(text.contains("wsg_membership_heartbeats_total"), "{text}");

    fleet.shutdown();
}

#[test]
fn plane_is_a_liveness_oracle_for_the_protocol_builder() {
    let mut fleet = fleet(7);
    // The builder closure receives the plane; a real protocol would stash
    // it as its PeerLiveness. Prove the handoff works and the oracle is
    // honest about a member it has never heard of (optimistic default).
    let mut handed: Option<Arc<MembershipPlane>> = None;
    let id = fleet.add_seed(|plane| {
        handed = Some(plane);
        Idle
    });
    let plane = handed.expect("builder ran");
    assert_eq!(plane.id(), id);
    assert!(plane.is_live(NodeId(99)), "strangers are presumed live");
    let oracle: Arc<dyn PeerLiveness> = plane;
    assert!(oracle.is_live(id));
    fleet.shutdown();
}
