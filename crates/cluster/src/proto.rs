//! The membership SOAP binding: `Join` / `JoinResponse` / `Heartbeat` /
//! `Leave` envelopes, served at every node's [`MEMBERSHIP_TARGET`].
//!
//! The wire shape mirrors WS-Membership's spirit through the workspace's
//! own SOAP stack: one body wrapper element per operation, each carrying
//! `Member` entries that bind a node id to its socket address and latest
//! heartbeat counter. Addresses ride along so membership knowledge spreads
//! transitively — a node that learns about a member from gossip can dial
//! it without any central registry.

use std::net::SocketAddr;

use wsg_net::{cov, NodeId};
use wsg_soap::{Envelope, MessageHeaders};
use wsg_xml::Element;

/// Namespace of the cluster membership operations.
pub const WSCLUSTER_NS: &str = "urn:ws-membership:2008";

/// The request target every cluster node's HTTP server answers membership
/// envelopes on (`/gossip` stays reserved for the application protocol).
pub const MEMBERSHIP_TARGET: &str = "/membership";

/// One member's identity, address and heartbeat evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberEntry {
    /// The member's node id.
    pub id: NodeId,
    /// Where its HTTP server listens (or listened, for stale evidence).
    pub addr: SocketAddr,
    /// Freshest known heartbeat counter.
    pub heartbeat: u64,
}

impl MemberEntry {
    fn to_element(self) -> Element {
        Element::in_ns("wsm", WSCLUSTER_NS, "Member")
            .with_attr("id", self.id.index().to_string())
            .with_attr("addr", self.addr.to_string())
            .with_attr("heartbeat", self.heartbeat.to_string())
    }

    fn from_element(element: &Element) -> Result<Self, ProtoError> {
        let field = |name: &str| {
            element.attr(name).ok_or_else(|| {
                cov!();
                ProtoError(format!("Member missing @{name}"))
            })
        };
        let id = field("id")?.parse::<usize>().map_err(|_| {
            cov!();
            ProtoError("unparseable member id".into())
        })?;
        let addr = field("addr")?.parse::<SocketAddr>().map_err(|_| {
            cov!();
            ProtoError("unparseable member addr".into())
        })?;
        let heartbeat = field("heartbeat")?.parse::<u64>().map_err(|_| {
            cov!();
            ProtoError("unparseable member heartbeat".into())
        })?;
        cov!();
        Ok(MemberEntry { id: NodeId(id), addr, heartbeat })
    }
}

/// A membership-plane message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterMessage {
    /// A node introduces itself to a seed member.
    Join(MemberEntry),
    /// The seed's synchronous answer: its whole current member list.
    JoinResponse(Vec<MemberEntry>),
    /// Periodic anti-entropy: the sender's non-dead view snapshot.
    Heartbeat(Vec<MemberEntry>),
    /// A graceful departure announcement (tombstones the member).
    Leave(MemberEntry),
}

/// A malformed membership envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster protocol: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

impl ClusterMessage {
    /// The WS-Addressing action URI of this operation.
    pub fn action(&self) -> String {
        format!("{WSCLUSTER_NS}:{}", self.operation())
    }

    /// The body wrapper element's local name.
    pub fn operation(&self) -> &'static str {
        match self {
            ClusterMessage::Join(_) => "Join",
            ClusterMessage::JoinResponse(_) => "JoinResponse",
            ClusterMessage::Heartbeat(_) => "Heartbeat",
            ClusterMessage::Leave(_) => "Leave",
        }
    }

    fn entries(&self) -> Vec<MemberEntry> {
        match self {
            ClusterMessage::Join(entry) | ClusterMessage::Leave(entry) => vec![*entry],
            ClusterMessage::JoinResponse(entries) | ClusterMessage::Heartbeat(entries) => {
                entries.clone()
            }
        }
    }

    /// Serialize as a one-way SOAP envelope addressed to `to`.
    pub fn to_envelope(&self, to: impl Into<String>) -> Envelope {
        let mut body = Element::in_ns("wsm", WSCLUSTER_NS, self.operation());
        for entry in self.entries() {
            body.push_child(entry.to_element());
        }
        Envelope::request(MessageHeaders::request(to, self.action()), body)
    }

    /// Decode a membership envelope.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] when the body is absent, the operation unknown, or a
    /// `Member` entry malformed.
    pub fn from_envelope(envelope: &Envelope) -> Result<Self, ProtoError> {
        let body = envelope.body().ok_or_else(|| {
            cov!();
            ProtoError("empty body".into())
        })?;
        let entries: Result<Vec<MemberEntry>, ProtoError> = body
            .children()
            .into_iter()
            .filter(|child| child.local_name() == "Member")
            .map(MemberEntry::from_element)
            .collect();
        let entries = entries?;
        let single = |op: &str| {
            entries.first().copied().ok_or_else(|| {
                cov!();
                ProtoError(format!("{op} without a Member entry"))
            })
        };
        match body.local_name() {
            "Join" => {
                cov!();
                Ok(ClusterMessage::Join(single("Join")?))
            }
            "JoinResponse" => {
                cov!();
                Ok(ClusterMessage::JoinResponse(entries))
            }
            "Heartbeat" => {
                cov!();
                Ok(ClusterMessage::Heartbeat(entries))
            }
            "Leave" => {
                cov!();
                Ok(ClusterMessage::Leave(single("Leave")?))
            }
            other => {
                cov!();
                Err(ProtoError(format!("unknown operation '{other}'")))
            }
        }
    }
}

/// The `To` URI a membership envelope for `addr` is addressed with.
pub fn membership_uri(addr: SocketAddr) -> String {
    format!("http://{addr}{MEMBERSHIP_TARGET}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: usize, port: u16, heartbeat: u64) -> MemberEntry {
        MemberEntry {
            id: NodeId(id),
            addr: format!("127.0.0.1:{port}").parse().unwrap(),
            heartbeat,
        }
    }

    #[test]
    fn every_operation_round_trips_through_xml() {
        let messages = [
            ClusterMessage::Join(entry(4, 9001, 0)),
            ClusterMessage::JoinResponse(vec![entry(0, 9000, 17), entry(4, 9001, 0)]),
            ClusterMessage::Heartbeat(vec![entry(0, 9000, 18), entry(1, 9002, 3)]),
            ClusterMessage::Leave(entry(1, 9002, 5)),
        ];
        for message in messages {
            let xml = message.to_envelope("http://127.0.0.1:9000/membership").to_xml();
            let parsed = Envelope::parse(&xml).expect("well-formed envelope");
            assert_eq!(parsed.addressing().action(), Some(message.action().as_str()));
            assert_eq!(ClusterMessage::from_envelope(&parsed).unwrap(), message);
        }
    }

    #[test]
    fn heartbeat_round_trips_empty_entry_lists() {
        let message = ClusterMessage::Heartbeat(Vec::new());
        let xml = message.to_envelope("http://x/membership").to_xml();
        let parsed = Envelope::parse(&xml).unwrap();
        assert_eq!(ClusterMessage::from_envelope(&parsed).unwrap(), message);
    }

    #[test]
    fn malformed_entries_are_errors_not_panics() {
        let body = Element::in_ns("wsm", WSCLUSTER_NS, "Join").with_child(
            Element::in_ns("wsm", WSCLUSTER_NS, "Member")
                .with_attr("id", "not-a-number")
                .with_attr("addr", "127.0.0.1:1")
                .with_attr("heartbeat", "0"),
        );
        let envelope =
            Envelope::request(MessageHeaders::request("http://x/membership", "urn:x"), body);
        assert!(ClusterMessage::from_envelope(&envelope).is_err());

        let empty_join = Envelope::request(
            MessageHeaders::request("http://x/membership", "urn:x"),
            Element::in_ns("wsm", WSCLUSTER_NS, "Join"),
        );
        assert!(ClusterMessage::from_envelope(&empty_join).is_err());

        let unknown = Envelope::request(
            MessageHeaders::request("http://x/membership", "urn:x"),
            Element::in_ns("wsm", WSCLUSTER_NS, "Promote"),
        );
        assert!(ClusterMessage::from_envelope(&unknown).is_err());
    }

    #[test]
    fn membership_uri_names_the_target() {
        assert_eq!(
            membership_uri("127.0.0.1:4321".parse().unwrap()),
            "http://127.0.0.1:4321/membership"
        );
    }
}
