//! The per-node membership plane: a [`MembershipView`] plus φ accrual
//! detectors, driven by a [`Clock`] so the same logic runs on virtual
//! and wall-clock time.
//!
//! The plane is a passive state machine: [`MembershipPlane::handle`]
//! folds in received envelopes, [`MembershipPlane::tick`] advances one
//! gossip round (bump own heartbeat, reassess liveness, pick fanout
//! targets). *Sending* is the caller's job — `ClusterRuntime` pumps
//! ticks from a thread, tests crank the clock by hand.

use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::sync::Arc;

use wsg_membership::{FailureDetectorConfig, MemberStatus, MembershipView, PhiAccrual};
use wsg_net::sync::Mutex;
use wsg_net::time::Clock;
use wsg_net::{NodeId, Pcg32, PeerLiveness, RngExt, SimDuration};
use wsg_obs::{Counter, Gauge, Registry};

use crate::proto::{ClusterMessage, MemberEntry};

/// Tuning knobs for the membership plane.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Gossip round length: how often each node bumps its heartbeat and
    /// pushes its view to `fanout` peers.
    pub interval: SimDuration,
    /// Peers targeted per round.
    pub fanout: usize,
    /// The fixed-timeout backstop (suspect/fail/forget ages).
    pub detector: FailureDetectorConfig,
    /// φ level at which the accrual detector downgrades a member to
    /// suspect ahead of the fixed suspect timeout.
    pub phi_threshold: f64,
    /// Inter-arrival samples each member's accrual detector remembers.
    pub accrual_window: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::for_interval(SimDuration::from_millis(100))
    }
}

impl ClusterConfig {
    /// A config whose detector timeouts scale with the gossip interval
    /// (see [`FailureDetectorConfig::for_interval`]).
    pub fn for_interval(interval: SimDuration) -> Self {
        ClusterConfig {
            interval,
            fanout: 3,
            detector: FailureDetectorConfig::for_interval(interval),
            phi_threshold: 8.0,
            accrual_window: 32,
        }
    }
}

/// Everything guarded by the plane's state lock.
#[derive(Debug)]
struct PlaneState {
    view: MembershipView,
    /// Member → socket address, learned from gossip and joins. Entries
    /// outlive view entries (addresses are stable per id in a run).
    addrs: BTreeMap<NodeId, SocketAddr>,
    /// Per-member φ accrual detectors (never one for ourselves).
    accrual: BTreeMap<NodeId, PhiAccrual>,
    /// Members that announced a graceful `Leave`: their gossiped
    /// heartbeats are ignored until an explicit re-`Join`.
    left: BTreeSet<NodeId>,
    /// Members whose socket refused a connection: re-marked dead every
    /// tick until their heartbeat counter progresses again.
    condemned: BTreeSet<NodeId>,
    /// Our own heartbeat counter.
    heartbeat: u64,
    self_addr: Option<SocketAddr>,
}

/// Gauge/counter handles registered lazily once the node's registry
/// exists (the runtime creates registries at deploy time).
#[derive(Debug)]
struct PlaneMetrics {
    alive: Arc<Gauge>,
    suspect: Arc<Gauge>,
    dead: Arc<Gauge>,
    heartbeats: Arc<Counter>,
}

impl PlaneMetrics {
    fn new(registry: &Registry) -> Self {
        PlaneMetrics {
            alive: registry
                .register_gauge("wsg_membership_alive", "Members currently considered alive."),
            suspect: registry
                .register_gauge("wsg_membership_suspect", "Members currently under suspicion."),
            dead: registry.register_gauge(
                "wsg_membership_dead",
                "Members declared dead but not yet forgotten.",
            ),
            heartbeats: registry.register_counter(
                "wsg_membership_heartbeats_total",
                "Membership heartbeat envelopes received and folded into the view.",
            ),
        }
    }
}

/// One node's live membership plane.
///
/// Shared (`Arc`) between the node's `/membership` SOAP route, its pump
/// thread, and — through [`PeerLiveness`] — the gossip protocol's peer
/// selection.
pub struct MembershipPlane {
    me: NodeId,
    clock: Arc<dyn Clock>,
    config: ClusterConfig,
    rng: Mutex<Pcg32>,
    state: Mutex<PlaneState>,
    metrics: Mutex<Option<PlaneMetrics>>,
}

impl std::fmt::Debug for MembershipPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (alive, suspect, dead) = self.status_counts();
        f.debug_struct("MembershipPlane")
            .field("me", &self.me)
            .field("alive", &alive)
            .field("suspect", &suspect)
            .field("dead", &dead)
            .finish()
    }
}

impl MembershipPlane {
    /// A plane for node `me` reading time from `clock`; `seed` drives
    /// the per-round target shuffle.
    pub fn new(me: NodeId, clock: Arc<dyn Clock>, config: ClusterConfig, seed: u64) -> Self {
        MembershipPlane {
            me,
            clock,
            rng: Mutex::new(Pcg32::new(seed, me.index() as u64)),
            config,
            state: Mutex::new(PlaneState {
                view: MembershipView::new(),
                addrs: BTreeMap::new(),
                accrual: BTreeMap::new(),
                left: BTreeSet::new(),
                condemned: BTreeSet::new(),
                heartbeat: 0,
                self_addr: None,
            }),
            metrics: Mutex::new(None),
        }
    }

    /// This plane's node id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The plane's tuning knobs.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Record our own listening address and seed the view with ourselves.
    /// Must be called before any message handling.
    pub fn register_self(&self, addr: SocketAddr) {
        let now = self.clock.now();
        let mut state = self.state.lock();
        state.self_addr = Some(addr);
        state.addrs.insert(self.me, addr);
        state.left.remove(&self.me);
        let heartbeat = state.heartbeat;
        state.view.readmit(self.me, heartbeat, now);
        self.publish(&state);
    }

    /// Register the `wsg_membership_*` metrics in `registry` and start
    /// mirroring the view's status counts into them.
    pub fn attach_registry(&self, registry: &Registry) {
        let state = self.state.lock();
        let mut metrics = self.metrics.lock();
        *metrics = Some(PlaneMetrics::new(registry));
        drop(metrics);
        self.publish(&state);
    }

    /// Our own `(id, addr, heartbeat)` evidence.
    ///
    /// # Panics
    ///
    /// Panics if [`MembershipPlane::register_self`] has not run.
    pub fn self_entry(&self) -> MemberEntry {
        let state = self.state.lock();
        MemberEntry {
            id: self.me,
            addr: state.self_addr.expect("register_self before self_entry"),
            heartbeat: state.heartbeat,
        }
    }

    /// The `Join` envelope body a joiner posts to a seed member.
    pub fn join_message(&self) -> ClusterMessage {
        ClusterMessage::Join(self.self_entry())
    }

    /// The `Leave` announcement for a graceful departure.
    pub fn leave_message(&self) -> ClusterMessage {
        ClusterMessage::Leave(self.self_entry())
    }

    /// Adopt a seed's `JoinResponse`: every listed member is (re-)admitted
    /// outright — the seed vouches for the snapshot, and a joiner has no
    /// history of its own to merge monotonically against.
    pub fn bootstrap(&self, members: &[MemberEntry]) {
        let now = self.clock.now();
        let mut state = self.state.lock();
        for entry in members {
            if entry.id == self.me {
                continue;
            }
            self.admit(&mut state, *entry, now);
        }
        self.publish(&state);
    }

    /// Fold one received membership envelope into the plane. Returns the
    /// synchronous reply to send back, if the operation has one (`Join`).
    pub fn handle(&self, message: &ClusterMessage) -> Option<ClusterMessage> {
        let now = self.clock.now();
        let mut state = self.state.lock();
        let reply = match message {
            ClusterMessage::Join(entry) => {
                self.admit(&mut state, *entry, now);
                Some(ClusterMessage::JoinResponse(Self::entries(&state)))
            }
            ClusterMessage::JoinResponse(entries) => {
                for entry in entries {
                    if entry.id != self.me {
                        self.admit(&mut state, *entry, now);
                    }
                }
                None
            }
            ClusterMessage::Heartbeat(entries) => {
                if let Some(metrics) = self.metrics.lock().as_ref() {
                    metrics.heartbeats.inc();
                }
                for entry in entries {
                    if entry.id == self.me || state.left.contains(&entry.id) {
                        continue;
                    }
                    state.addrs.entry(entry.id).or_insert(entry.addr);
                    if state.view.record(entry.id, entry.heartbeat, now) {
                        // The counter progressed: genuinely fresh evidence,
                        // feed the accrual detector and lift any refusal
                        // verdict — the member is demonstrably back.
                        state.condemned.remove(&entry.id);
                        let window = self.config.accrual_window;
                        state
                            .accrual
                            .entry(entry.id)
                            .or_insert_with(|| PhiAccrual::new(window))
                            .heartbeat(now);
                    }
                }
                None
            }
            ClusterMessage::Leave(entry) => {
                state.left.insert(entry.id);
                state.view.mark_dead(entry.id);
                None
            }
        };
        self.publish(&state);
        reply
    }

    /// An explicit (re-)introduction: replaces any stale entry even if the
    /// member's heartbeat counter regressed (process restart), and clears
    /// standing tombstones.
    fn admit(&self, state: &mut PlaneState, entry: MemberEntry, now: wsg_net::SimTime) {
        state.left.remove(&entry.id);
        state.condemned.remove(&entry.id);
        state.addrs.insert(entry.id, entry.addr);
        state.view.readmit(entry.id, entry.heartbeat, now);
        let mut accrual = PhiAccrual::new(self.config.accrual_window);
        accrual.heartbeat(now);
        state.accrual.insert(entry.id, accrual);
    }

    /// Advance one gossip round: bump our heartbeat, reassess liveness
    /// (fixed timeouts, then φ accrual, then standing tombstones), and
    /// pick up to `fanout` non-dead targets. Returns the heartbeat
    /// message to push and the chosen `(peer, addr)` targets.
    pub fn tick(&self) -> (ClusterMessage, Vec<(NodeId, SocketAddr)>) {
        let now = self.clock.now();
        let mut state = self.state.lock();
        state.heartbeat += 1;
        let heartbeat = state.heartbeat;
        state.view.record(self.me, heartbeat, now);

        // Fixed-timeout backstop first; it recomputes every status from
        // heartbeat age, wiping out-of-band verdicts...
        state.view.reassess(
            now,
            self.config.detector.suspect_after(),
            self.config.detector.fail_after(),
            self.config.detector.forget_after(),
        );
        // ...so the sharper evidence is re-applied on top each round:
        // φ accrual suspicion (adaptive, usually fires first), refused
        // connections, and graceful leaves.
        let threshold = self.config.phi_threshold;
        let suspects: Vec<NodeId> = state
            .accrual
            .iter()
            .filter(|(id, phi)| **id != self.me && phi.is_suspect(now, threshold))
            .map(|(id, _)| *id)
            .collect();
        for id in suspects {
            state.view.mark_suspect(id);
        }
        for id in state.condemned.clone() {
            state.view.mark_dead(id);
        }
        for id in state.left.clone() {
            state.view.mark_dead(id);
        }
        // Forgotten members need no detector or tombstone state any more.
        let view = state.view.clone();
        state.accrual.retain(|id, _| view.status(*id).is_some());
        state.condemned.retain(|id| view.status(*id).is_some());
        state.left.retain(|id| view.status(*id).is_some());

        self.publish(&state);

        let message = ClusterMessage::Heartbeat(Self::entries(&state));
        let mut candidates: Vec<(NodeId, SocketAddr)> = state
            .view
            .not_dead()
            .into_iter()
            .filter(|id| *id != self.me)
            .filter_map(|id| state.addrs.get(&id).map(|addr| (id, *addr)))
            .collect();
        drop(state);
        let mut rng = self.rng.lock();
        rng.shuffle(&mut candidates);
        candidates.truncate(self.config.fanout);
        (message, candidates)
    }

    /// The non-dead members with known addresses, ourselves included.
    fn entries(state: &PlaneState) -> Vec<MemberEntry> {
        state
            .view
            .snapshot()
            .into_iter()
            .filter_map(|(id, heartbeat)| {
                state.addrs.get(&id).map(|addr| MemberEntry { id, addr: *addr, heartbeat })
            })
            .collect()
    }

    /// Record that `addr` refused a connection: its member is declared
    /// dead now and re-condemned every tick until its heartbeat counter
    /// progresses again. Returns the member, if the address is known.
    pub fn note_unreachable(&self, addr: SocketAddr) -> Option<NodeId> {
        let mut state = self.state.lock();
        let id = state
            .addrs
            .iter()
            .find(|(id, known)| **known == addr && **id != self.me)
            .map(|(id, _)| *id)?;
        state.condemned.insert(id);
        state.view.mark_dead(id);
        self.publish(&state);
        Some(id)
    }

    /// Addresses of members currently declared dead or departed — what
    /// the transport should evict pooled connections for.
    pub fn dead_addrs(&self) -> Vec<SocketAddr> {
        let state = self.state.lock();
        state
            .addrs
            .iter()
            .filter(|(id, _)| {
                state.left.contains(id) || state.view.status(**id) == Some(MemberStatus::Dead)
            })
            .map(|(_, addr)| *addr)
            .collect()
    }

    /// Members currently alive or suspect (ourselves included).
    pub fn live_members(&self) -> Vec<NodeId> {
        self.state.lock().view.not_dead()
    }

    /// Members currently alive (ourselves included).
    pub fn alive_members(&self) -> Vec<NodeId> {
        self.state.lock().view.alive()
    }

    /// `(alive, suspect, dead)` — what the gauges export.
    pub fn status_counts(&self) -> (usize, usize, usize) {
        self.state.lock().view.status_counts()
    }

    /// The liveness verdict for one member, if known at all.
    pub fn status_of(&self, member: NodeId) -> Option<MemberStatus> {
        self.state.lock().view.status(member)
    }

    /// The known address of a member.
    pub fn addr_of(&self, member: NodeId) -> Option<SocketAddr> {
        self.state.lock().addrs.get(&member).copied()
    }

    /// Mirror the view's status counts into the gauges (when attached).
    fn publish(&self, state: &PlaneState) {
        let metrics = self.metrics.lock();
        if let Some(metrics) = metrics.as_ref() {
            let (alive, suspect, dead) = state.view.status_counts();
            metrics.alive.set(alive as i64);
            metrics.suspect.set(suspect as i64);
            metrics.dead.set(dead as i64);
        }
    }
}

/// Dead or departed members are not gossip targets; everyone else —
/// including merely-suspect members and strangers the plane has never
/// heard of — is, erring towards availability.
impl PeerLiveness for MembershipPlane {
    fn is_live(&self, peer: NodeId) -> bool {
        let state = self.state.lock();
        if state.left.contains(&peer) {
            return false;
        }
        state.view.status(peer) != Some(MemberStatus::Dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_net::time::ManualClock;
    use wsg_net::SimTime;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn plane_at(me: usize, clock: Arc<ManualClock>) -> MembershipPlane {
        let plane = MembershipPlane::new(
            NodeId(me),
            clock,
            ClusterConfig::for_interval(SimDuration::from_millis(100)),
            7,
        );
        plane.register_self(addr(9000 + me as u16));
        plane
    }

    #[test]
    fn join_is_answered_with_the_membership() {
        let clock = Arc::new(ManualClock::new());
        let seed = plane_at(0, Arc::clone(&clock));
        let joiner = MemberEntry { id: NodeId(1), addr: addr(9001), heartbeat: 0 };
        let reply = seed.handle(&ClusterMessage::Join(joiner)).expect("join replies");
        let ClusterMessage::JoinResponse(entries) = reply else {
            panic!("expected JoinResponse, got {reply:?}");
        };
        let ids: Vec<NodeId> = entries.iter().map(|e| e.id).collect();
        assert!(ids.contains(&NodeId(0)) && ids.contains(&NodeId(1)), "{ids:?}");
        assert!(seed.is_live(NodeId(1)));
    }

    #[test]
    fn silence_progresses_suspect_then_dead_then_forgotten() {
        let clock = Arc::new(ManualClock::new());
        let plane = plane_at(0, Arc::clone(&clock));
        plane.handle(&ClusterMessage::Heartbeat(vec![MemberEntry {
            id: NodeId(1),
            addr: addr(9001),
            heartbeat: 1,
        }]));
        assert_eq!(plane.status_of(NodeId(1)), Some(MemberStatus::Alive));

        // Fixed timeouts for a 100ms interval: suspect 1s, fail 3s, forget 30s.
        clock.advance(SimDuration::from_millis(1500));
        plane.tick();
        assert_eq!(plane.status_of(NodeId(1)), Some(MemberStatus::Suspect));
        assert!(plane.is_live(NodeId(1)), "suspects stay usable");

        clock.advance(SimDuration::from_millis(2000));
        plane.tick();
        assert_eq!(plane.status_of(NodeId(1)), Some(MemberStatus::Dead));
        assert!(!plane.is_live(NodeId(1)));
        assert_eq!(plane.dead_addrs(), vec![addr(9001)]);

        clock.set(SimTime::from_secs(40));
        plane.tick();
        assert_eq!(plane.status_of(NodeId(1)), None, "forgotten");
    }

    #[test]
    fn phi_accrual_suspects_before_the_fixed_timeout() {
        let clock = Arc::new(ManualClock::new());
        let plane = plane_at(0, Arc::clone(&clock));
        // A steady 100ms heartbeat rhythm teaches the accrual detector.
        for beat in 1..=30u64 {
            clock.advance(SimDuration::from_millis(100));
            plane.handle(&ClusterMessage::Heartbeat(vec![MemberEntry {
                id: NodeId(1),
                addr: addr(9001),
                heartbeat: beat,
            }]));
        }
        // 600ms of silence: far under the fixed 1s suspect timeout, but
        // six learned intervals — φ is overwhelming.
        clock.advance(SimDuration::from_millis(600));
        plane.tick();
        assert_eq!(plane.status_of(NodeId(1)), Some(MemberStatus::Suspect));
        assert!(plane.is_live(NodeId(1)));
    }

    #[test]
    fn refused_connections_condemn_until_fresh_progress() {
        let clock = Arc::new(ManualClock::new());
        let plane = plane_at(0, Arc::clone(&clock));
        plane.handle(&ClusterMessage::Heartbeat(vec![MemberEntry {
            id: NodeId(1),
            addr: addr(9001),
            heartbeat: 5,
        }]));
        assert_eq!(plane.note_unreachable(addr(9001)), Some(NodeId(1)));
        assert!(!plane.is_live(NodeId(1)));
        // The next tick's reassess would resurrect it from heartbeat age
        // alone; the condemnation must stick.
        clock.advance(SimDuration::from_millis(100));
        plane.tick();
        assert_eq!(plane.status_of(NodeId(1)), Some(MemberStatus::Dead));
        // Stale gossip (counter not progressing) does not resurrect...
        plane.handle(&ClusterMessage::Heartbeat(vec![MemberEntry {
            id: NodeId(1),
            addr: addr(9001),
            heartbeat: 5,
        }]));
        plane.tick();
        assert!(!plane.is_live(NodeId(1)));
        // ...fresh progress does.
        plane.handle(&ClusterMessage::Heartbeat(vec![MemberEntry {
            id: NodeId(1),
            addr: addr(9001),
            heartbeat: 6,
        }]));
        assert!(plane.is_live(NodeId(1)));
        clock.advance(SimDuration::from_millis(100));
        plane.tick();
        assert_eq!(plane.status_of(NodeId(1)), Some(MemberStatus::Alive));
    }

    #[test]
    fn leavers_are_tombstoned_until_rejoin() {
        let clock = Arc::new(ManualClock::new());
        let plane = plane_at(0, Arc::clone(&clock));
        let one = MemberEntry { id: NodeId(1), addr: addr(9001), heartbeat: 3 };
        plane.handle(&ClusterMessage::Heartbeat(vec![one]));
        plane.handle(&ClusterMessage::Leave(one));
        assert!(!plane.is_live(NodeId(1)));
        // Even *fresh* gossip about a leaver is ignored: the departure was
        // deliberate, only a new Join re-admits.
        plane.handle(&ClusterMessage::Heartbeat(vec![MemberEntry {
            id: NodeId(1),
            addr: addr(9001),
            heartbeat: 9,
        }]));
        plane.tick();
        assert!(!plane.is_live(NodeId(1)));
        plane.handle(&ClusterMessage::Join(MemberEntry {
            id: NodeId(1),
            addr: addr(9001),
            heartbeat: 0,
        }));
        assert!(plane.is_live(NodeId(1)));
    }

    #[test]
    fn tick_targets_skip_self_and_dead_members() {
        let clock = Arc::new(ManualClock::new());
        let plane = plane_at(0, Arc::clone(&clock));
        for id in 1..=5usize {
            plane.handle(&ClusterMessage::Heartbeat(vec![MemberEntry {
                id: NodeId(id),
                addr: addr(9000 + id as u16),
                heartbeat: 1,
            }]));
        }
        plane.note_unreachable(addr(9003));
        let (message, targets) = plane.tick();
        assert!(matches!(message, ClusterMessage::Heartbeat(_)));
        assert_eq!(targets.len(), plane.config().fanout);
        for (id, _) in &targets {
            assert_ne!(*id, NodeId(0), "never gossips to itself");
            assert_ne!(*id, NodeId(3), "never gossips to the dead");
        }
        // The pushed snapshot excludes the dead member too.
        let ClusterMessage::Heartbeat(entries) = message else { unreachable!() };
        assert!(entries.iter().all(|e| e.id != NodeId(3)));
        assert!(entries.iter().any(|e| e.id == NodeId(0)), "advertises itself");
    }

    #[test]
    fn gauges_track_the_view_and_heartbeats_count() {
        let clock = Arc::new(ManualClock::new());
        let plane = plane_at(0, Arc::clone(&clock));
        let registry = Registry::new();
        plane.attach_registry(&registry);
        plane.handle(&ClusterMessage::Heartbeat(vec![MemberEntry {
            id: NodeId(1),
            addr: addr(9001),
            heartbeat: 1,
        }]));
        plane.note_unreachable(addr(9001));
        let text = registry.render();
        assert!(text.contains("wsg_membership_alive 1\n"), "{text}");
        assert!(text.contains("wsg_membership_dead 1\n"), "{text}");
        assert!(text.contains("wsg_membership_suspect 0\n"), "{text}");
        assert!(text.contains("wsg_membership_heartbeats_total 1\n"), "{text}");
    }
}
