//! # wsg-cluster — the live membership plane
//!
//! The WS-Gossip paper assumes a *Membership service* that hands gossip
//! peers out (§3); `wsg_membership` provides the algorithms (heartbeat
//! views, φ accrual detection) and the simulator exercises them on
//! virtual time. This crate runs the same algorithms **live**: every
//! node in a [`ClusterRuntime`] fleet serves a WS-Membership-style SOAP
//! binding (`Join`/`JoinResponse`/`Heartbeat`/`Leave`, namespace
//! `urn:ws-membership:2008`) on its real socket at `/membership`, pumps
//! heartbeat gossip from a background thread, and feeds the resulting
//! view to the application protocol through [`wsg_net::PeerLiveness`].
//!
//! * [`proto`] — the SOAP binding and its `Member` entry encoding;
//! * [`plane`] — [`MembershipPlane`]: the clock-driven state machine
//!   (view + accrual detectors + leave/refusal tombstones + metrics);
//! * [`runtime`] — [`ClusterRuntime`]: `NetRuntime` plus per-node planes,
//!   `/membership` routes, pump threads, joins, leaves and crashes.
//!
//! Determinism note: the plane itself is clock-generic (tests drive it
//! with [`wsg_net::ManualClock`], bit-identically to the simulator);
//! only the runtime's pump threads live on wall-clock time, and they
//! read it exclusively through [`wsg_http::WallClock`] (lint rule D2).

pub mod plane;
pub mod proto;
pub mod runtime;

pub use plane::{ClusterConfig, MembershipPlane};
pub use proto::{membership_uri, ClusterMessage, MemberEntry, ProtoError, MEMBERSHIP_TARGET, WSCLUSTER_NS};
pub use runtime::ClusterRuntime;
