//! [`ClusterRuntime`]: a [`NetRuntime`] fleet where every node also runs
//! a [`MembershipPlane`] — served on its socket at `/membership`, pumped
//! by a per-node heartbeat thread, and consulted by the application
//! protocol (through [`wsg_net::PeerLiveness`]) for peer selection.
//!
//! Wall-clock discipline (lint rule D2): this module never reads
//! `Instant::now` itself — planes read time through one fleet-wide
//! [`WallClock`], pump threads pace themselves with `thread::sleep`
//! converted via [`SimDuration::to_std`].

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use wsg_http::{
    NetNode, NetRuntime, NetRuntimeConfig, OutboundHandle, PostError, SoapHttpClient, WallClock,
};
use wsg_http::server::{Service, SoapReply};
use wsg_net::time::Clock;
use wsg_net::{NodeId, Protocol, SplitMix64};
use wsg_obs::Registry;
use wsg_soap::{Envelope, Fault, FaultCode};

use crate::plane::{ClusterConfig, MembershipPlane};
use crate::proto::{membership_uri, ClusterMessage, MEMBERSHIP_TARGET};

/// A deployed node's membership machinery.
struct ClusterSlot {
    plane: Arc<MembershipPlane>,
    stop: Arc<AtomicBool>,
    pump: Option<JoinHandle<()>>,
}

/// A live fleet with a membership plane on every node.
///
/// The builder closures handed to [`ClusterRuntime::add_seed`] /
/// [`ClusterRuntime::add_node`] receive the node's plane so the protocol
/// can adopt it as its liveness oracle (e.g.
/// `WsGossipNode::with_liveness(plane)`); the runtime itself never
/// inspects the protocol.
pub struct ClusterRuntime<P: Protocol<Message = String> + Send + 'static> {
    net: NetRuntime<P>,
    slots: Vec<ClusterSlot>,
    config: ClusterConfig,
    clock: Arc<WallClock>,
    /// Seeds pump clients and plane shuffles, in deploy order.
    seeder: SplitMix64,
    /// Client used for synchronous Join bootstraps and Leave broadcasts.
    external: SoapHttpClient,
}

impl<P> ClusterRuntime<P>
where
    P: Protocol<Message = String> + Send + 'static,
{
    /// An empty fleet. All planes share one [`WallClock`] epoch so their
    /// `SimTime` readings are mutually comparable.
    pub fn new(seed: u64, net_config: NetRuntimeConfig, config: ClusterConfig) -> Self {
        let mut seeder = SplitMix64::new(seed ^ 0x0063_6c75_7374_6572);
        let external = SoapHttpClient::new(seeder.next(), net_config.client.clone());
        ClusterRuntime {
            net: NetRuntime::new(seed, net_config),
            slots: Vec::new(),
            config,
            clock: Arc::new(WallClock::new()),
            seeder,
            external,
        }
    }

    /// Deploy a bootstrap member: it starts with a view containing only
    /// itself and waits for joiners (or heartbeats) to find it.
    pub fn add_seed<F>(&mut self, build: F) -> NodeId
    where
        F: FnOnce(Arc<MembershipPlane>) -> P,
    {
        self.deploy(build)
    }

    /// Deploy a member that bootstraps by posting `Join` to the already-
    /// running node `seed` and adopting its synchronous `JoinResponse`.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the seed is unreachable or replies with
    /// something that is not a well-formed `JoinResponse`. The node is
    /// still deployed in that case — it will discover the fleet only if
    /// some member heartbeats it first.
    pub fn add_node<F>(&mut self, seed: NodeId, build: F) -> io::Result<NodeId>
    where
        F: FnOnce(Arc<MembershipPlane>) -> P,
    {
        let id = self.deploy(build);
        let plane = Arc::clone(&self.slots[id.index()].plane);
        let seed_addr = self.net.addr_of(seed);
        let join = plane.join_message();
        let xml = join.to_envelope(membership_uri(seed_addr)).to_xml();
        let outcome = self
            .external
            .post(seed_addr, MEMBERSHIP_TARGET, Some(&join.action()), &[], xml.as_bytes())
            .map_err(|e| io::Error::other(format!("join via {seed}: {e}")))?;
        if outcome.response.status != 200 {
            return Err(io::Error::other(format!(
                "join via {seed}: HTTP {}",
                outcome.response.status
            )));
        }
        let envelope = Envelope::parse(&outcome.response.body_text())
            .map_err(|e| io::Error::other(format!("join reply: {e}")))?;
        match ClusterMessage::from_envelope(&envelope) {
            Ok(ClusterMessage::JoinResponse(entries)) => {
                plane.bootstrap(&entries);
                Ok(id)
            }
            Ok(other) => {
                Err(io::Error::other(format!("join reply was a {}", other.operation())))
            }
            Err(e) => Err(io::Error::other(format!("join reply: {e}"))),
        }
    }

    /// Bind, route, and start one node plus its plane and pump thread.
    fn deploy<F>(&mut self, build: F) -> NodeId
    where
        F: FnOnce(Arc<MembershipPlane>) -> P,
    {
        // Ids are dense and never reused, so the next one is predictable —
        // which lets the plane (and the route closure capturing it) exist
        // before the listener does.
        let id = NodeId(self.net.node_count());
        let plane = Arc::new(MembershipPlane::new(
            id,
            Arc::clone(&self.clock) as Arc<dyn Clock>,
            self.config.clone(),
            self.seeder.next(),
        ));

        let route_plane = Arc::clone(&plane);
        #[allow(clippy::result_large_err)] // the Err size is fixed by the Service signature
        let service: Service = Arc::new(move |request| {
            let message = ClusterMessage::from_envelope(&request.envelope)
                .map_err(|e| Fault::new(FaultCode::Sender, e.to_string()))?;
            match route_plane.handle(&message) {
                Some(reply) => {
                    let to = route_plane
                        .addr_of(route_plane.id())
                        .map(membership_uri)
                        .unwrap_or_else(|| "urn:unaddressed".into());
                    Ok(SoapReply::Envelope(reply.to_envelope(to)))
                }
                None => Ok(SoapReply::Accepted),
            }
        });

        let protocol = build(Arc::clone(&plane));
        let assigned =
            self.net.add_node_routed(protocol, vec![(MEMBERSHIP_TARGET.to_string(), service)]);
        debug_assert_eq!(assigned, id);
        plane.register_self(self.net.addr_of(id));
        plane.attach_registry(&self.net.registry_of(id));

        // Gossip traffic feeds the failure detector too: a peer whose
        // batch was connection-refused after retries is condemned exactly
        // like one that refused a heartbeat.
        let outbound = self.net.outbound_of(id);
        let hook_plane = Arc::clone(&plane);
        outbound.set_unreachable_hook(Arc::new(move |addr| {
            hook_plane.note_unreachable(addr);
        }));

        let stop = Arc::new(AtomicBool::new(false));
        let pump = spawn_pump(
            Arc::clone(&plane),
            Arc::clone(&stop),
            SoapHttpClient::new_observed(
                self.seeder.next(),
                self.net_client_config(),
                &self.net.registry_of(id),
            ),
            outbound,
        );
        self.slots.push(ClusterSlot { plane, stop, pump: Some(pump) });
        id
    }

    fn net_client_config(&self) -> wsg_http::HttpClientConfig {
        // The pump tolerates no retries: a refused heartbeat *is* the
        // signal (note_unreachable), and retry backoff would stall the
        // round. Every timeout is scaled to the heartbeat interval for
        // the same reason — a slow peer must never hold the pump long
        // enough for *our* silence to exceed other nodes' fail window.
        // Detection latency beats delivery guarantees here.
        let interval = self.config.interval.to_std();
        let mut config = wsg_http::HttpClientConfig::default();
        config.retries = 0;
        config.connect_timeout = interval.max(std::time::Duration::from_millis(50));
        config.read_timeout = (interval * 2).max(std::time::Duration::from_millis(100));
        config.write_timeout = config.read_timeout;
        config
    }

    /// This node's membership plane.
    pub fn plane(&self, id: NodeId) -> Arc<MembershipPlane> {
        Arc::clone(&self.slots[id.index()].plane)
    }

    /// The underlying socket fleet.
    pub fn net(&self) -> &NetRuntime<P> {
        &self.net
    }

    /// Mutable access to the underlying socket fleet.
    pub fn net_mut(&mut self) -> &mut NetRuntime<P> {
        &mut self.net
    }

    /// Node `id`'s metric registry (delegates to the fleet).
    pub fn registry_of(&self, id: NodeId) -> Arc<Registry> {
        self.net.registry_of(id)
    }

    /// POST an application envelope to `to` as an external client.
    ///
    /// # Errors
    ///
    /// [`PostError`] when the node is unreachable.
    pub fn post_external(
        &self,
        to: NodeId,
        action: Option<&str>,
        xml: &str,
    ) -> Result<wsg_http::PostOutcome, PostError> {
        self.net.post_external(to, action, xml)
    }

    /// Gracefully depart node `id`: stop its pump, broadcast its `Leave`
    /// to every member it still considered live, then drain and stop the
    /// node. Returns its final state ([`None`] if already stopped).
    pub fn leave(&mut self, id: NodeId) -> Option<NetNode<P>> {
        let slot = self.slots.get_mut(id.index())?;
        stop_pump(slot);
        let plane = Arc::clone(&slot.plane);
        let leave = plane.leave_message();
        for peer in plane.live_members() {
            if peer == id {
                continue;
            }
            if let Some(addr) = plane.addr_of(peer) {
                let xml = leave.to_envelope(membership_uri(addr)).to_xml();
                // Best-effort: a peer that misses the announcement will
                // time the leaver out like any silent member.
                // wsg_lint: allow(error-swallowing) — the accrual detector is the backstop for a lost Leave
                let _ = self.external.post(
                    addr,
                    MEMBERSHIP_TARGET,
                    Some(&leave.action()),
                    &[],
                    xml.as_bytes(),
                );
            }
        }
        self.net.remove_node(id)
    }

    /// Crash-stop node `id`: no announcement, listener down first, pump
    /// killed. Survivors must *detect* the failure.
    pub fn crash(&mut self, id: NodeId) -> Option<NetNode<P>> {
        let slot = self.slots.get_mut(id.index())?;
        stop_pump(slot);
        self.net.crash(id)
    }

    /// Stop every pump, then the whole fleet. Returns final node states
    /// in id order (already-stopped nodes are not re-reported).
    pub fn shutdown(mut self) -> Vec<NetNode<P>> {
        for slot in &mut self.slots {
            stop_pump(slot);
        }
        self.net.shutdown()
    }
}

fn stop_pump(slot: &mut ClusterSlot) {
    slot.stop.store(true, Ordering::SeqCst);
    if let Some(handle) = slot.pump.take() {
        // wsg_lint: allow(E2) — a panicked pump already showed up as missing heartbeats; shutdown must still proceed
        let _ = handle.join();
    }
}

/// The heartbeat pump: every `interval`, advance the plane one round and
/// push the heartbeat to its chosen targets — piggybacked onto an
/// outbound gossip batch already forming for that peer when there is one
/// (no extra request at all), POSTed directly otherwise. Refused direct
/// targets are reported back ([`MembershipPlane::note_unreachable`]) and
/// their pooled connections evicted, as are all currently-dead members'
/// addresses.
fn spawn_pump(
    plane: Arc<MembershipPlane>,
    stop: Arc<AtomicBool>,
    client: SoapHttpClient,
    outbound: OutboundHandle,
) -> JoinHandle<()> {
    let interval = plane.config().interval.to_std();
    std::thread::Builder::new()
        .name(format!("wsg-cluster-pump-{}", plane.id().index()))
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let (message, targets) = plane.tick();
                let action = message.action();
                for (member, addr) in targets {
                    let xml = message.to_envelope(membership_uri(addr)).to_xml();
                    // A batch already headed to this peer carries the
                    // heartbeat for free. Only the direct path below can
                    // observe a refusal, but batch failures reach the
                    // plane through the sender's unreachable hook, so no
                    // detection signal is lost.
                    if outbound.piggyback(member, MEMBERSHIP_TARGET, &xml) {
                        continue;
                    }
                    match client.post(addr, MEMBERSHIP_TARGET, Some(&action), &[], xml.as_bytes()) {
                        Ok(_) => {}
                        // Refused means nobody is listening — condemn. A
                        // timeout is only load (the φ detector will catch
                        // a genuinely silent member soon enough), and
                        // condemning live-but-busy peers makes views flap.
                        Err(e) if e.last.kind() == std::io::ErrorKind::ConnectionRefused => {
                            plane.note_unreachable(addr);
                        }
                        Err(_) => {}
                    }
                }
                for addr in plane.dead_addrs() {
                    client.evict(addr);
                }
            }
        })
        .expect("spawn cluster pump thread")
}
