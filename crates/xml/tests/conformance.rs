//! XML conformance battery: tricky-but-legal documents must parse to the
//! right infoset; illegal ones must fail cleanly (never panic).

use wsg_xml::{Element, XmlEvent, XmlReader};

fn events(input: &str) -> Result<Vec<XmlEvent>, wsg_xml::XmlError> {
    let mut reader = XmlReader::new(input);
    let mut out = Vec::new();
    loop {
        let ev = reader.next_event()?;
        if ev == XmlEvent::Eof {
            return Ok(out);
        }
        out.push(ev);
    }
}

// ----- legal documents -----

#[test]
fn utf8_multibyte_content_and_names() {
    let doc = Element::parse("<título attr=\"ação\">héllo wörld — 你好 🦀</título>").unwrap();
    assert_eq!(doc.local_name(), "título");
    assert_eq!(doc.attr("attr"), Some("ação"));
    assert!(doc.text().contains("你好"));
    assert!(doc.text().contains("🦀"));
    // And it round-trips.
    let again = Element::parse(&doc.to_xml_string()).unwrap();
    assert_eq!(again, doc);
}

#[test]
fn default_namespace_undeclaration() {
    // xmlns="" inside a default-namespaced element puts children back in
    // no namespace.
    let doc = Element::parse("<a xmlns=\"urn:x\"><b xmlns=\"\"><c/></b></a>").unwrap();
    assert_eq!(doc.name().namespace(), Some("urn:x"));
    let b = doc.children()[0];
    assert_eq!(b.name().namespace(), None);
    assert_eq!(b.children()[0].name().namespace(), None);
}

#[test]
fn same_local_name_different_namespaces_coexist() {
    let doc = Element::parse(
        "<r xmlns:a=\"urn:one\" xmlns:b=\"urn:two\"><a:item/><b:item/></r>",
    )
    .unwrap();
    assert!(doc.child_ns("urn:one", "item").is_some());
    assert!(doc.child_ns("urn:two", "item").is_some());
}

#[test]
fn attribute_single_and_double_quotes() {
    let doc = Element::parse("<a x='single \"inner\"' y=\"double 'inner'\"/>").unwrap();
    assert_eq!(doc.attr("x"), Some("single \"inner\""));
    assert_eq!(doc.attr("y"), Some("double 'inner'"));
}

#[test]
fn comment_with_single_dashes_ok() {
    let evs = events("<a><!-- a - b - c --></a>").unwrap();
    assert!(evs.iter().any(|e| matches!(e, XmlEvent::Comment(c) if c == " a - b - c ")));
}

#[test]
fn cdata_containing_markup_like_text() {
    let doc = Element::parse("<a><![CDATA[<not><xml> &amp; ]] > still text]]></a>").unwrap();
    assert_eq!(doc.text(), "<not><xml> &amp; ]] > still text");
}

#[test]
fn processing_instruction_before_and_after_root() {
    let evs = events("<?style hint?><a/><?done now?>").unwrap();
    let pis: Vec<_> = evs
        .iter()
        .filter(|e| matches!(e, XmlEvent::ProcessingInstruction { .. }))
        .collect();
    assert_eq!(pis.len(), 2);
}

#[test]
fn whitespace_everywhere_legal() {
    let doc = Element::parse("  \n<a  x = \"1\"  >\n\t<b\n/>  </a>\n  ").unwrap();
    assert_eq!(doc.attr("x"), Some("1"));
    assert_eq!(doc.children().len(), 1);
}

#[test]
fn numeric_char_refs_boundary_values() {
    let doc = Element::parse("<a>&#x9;&#x10FFFF;&#65;</a>").unwrap();
    let text = doc.text();
    assert!(text.starts_with('\t'));
    assert!(text.ends_with('A'));
    assert!(text.contains('\u{10FFFF}'));
}

#[test]
fn long_tokens_are_fine() {
    let name = "a".repeat(10_000);
    let value = "v".repeat(100_000);
    let xml = format!("<{name} attr=\"{value}\"/>");
    let doc = Element::parse(&xml).unwrap();
    assert_eq!(doc.local_name(), name);
    assert_eq!(doc.attr("attr").unwrap().len(), 100_000);
}

#[test]
fn nesting_to_the_limit_parses() {
    let depth = 500; // just under MAX_DEPTH
    let mut xml = String::new();
    for _ in 0..depth {
        xml.push_str("<d>");
    }
    for _ in 0..depth {
        xml.push_str("</d>");
    }
    assert!(Element::parse(&xml).is_ok());
}

#[test]
fn prefixed_attribute_namespaces_resolve() {
    let doc = Element::parse(
        "<a xmlns:p=\"urn:p\" p:k=\"v\" k=\"plain\"/>",
    )
    .unwrap();
    assert_eq!(doc.attr_ns("urn:p", "k"), Some("v"));
    assert_eq!(doc.attr("k"), Some("plain"));
}

// ----- illegal documents: clean errors, no panics -----

#[test]
fn rejects_garbage_cleanly() {
    for bad in [
        "",
        "   ",
        "<",
        "<a",
        "<a>",
        "</a>",
        "<a></b>",
        "<a/><b/>",
        "<a x=1/>",
        "<a x=\"1\" x=\"2\"/>",
        "<a>&unknown;</a>",
        "<a>&#xD800;</a>",
        "<a><!-- -- --></a>",
        "<1bad/>",
        "<a><![CDATA[unterminated</a>",
        "<!DOCTYPE html><a/>",
        "<a xmlns:p=\"\"><p:b/></a>",
        "<a><?pi unterminated</a>",
        "text outside <a/>",
        "<p:a/>",
        "<a b=\"<\"/>",
    ] {
        assert!(Element::parse(bad).is_err(), "should reject: {bad:?}");
    }
}

#[test]
fn rejects_xml_declaration_mid_document() {
    assert!(Element::parse("<a><?xml version=\"1.0\"?></a>").is_err());
}

#[test]
fn error_positions_point_into_the_input() {
    let input = "<a><b></c></a>";
    let err = Element::parse(input).unwrap_err();
    assert!(err.position() > 0 && err.position() < input.len());
}

#[test]
fn writer_rejects_invalid_api_use_cleanly() {
    use wsg_xml::{QName, XmlWriter};
    // Invalid element name.
    let mut w = XmlWriter::new();
    assert!(w.start_element(&QName::new("bad name")).is_err());
    // Comment with double dash.
    let mut w = XmlWriter::new();
    w.start_element(&QName::new("a")).unwrap();
    assert!(w.comment("a--b").is_err());
    // CDATA containing the terminator.
    assert!(w.cdata("x]]>y").is_err());
}
