//! Property tests: any generated element tree serialises to XML that parses
//! back to an equal tree, and escaping round-trips arbitrary strings.

use proptest::prelude::*;
use wsg_xml::tree::{Element, Node};
use wsg_xml::{escape, QName};

/// XML-legal text: strip the control characters XML 1.0 forbids.
fn xml_text() -> impl Strategy<Value = String> {
    "[ -~\u{A0}-\u{2FF}]{0,40}".prop_map(|s| {
        s.chars().filter(|c| escape::is_xml_char(*c)).collect()
    })
}

fn xml_name() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,12}"
}

fn ns_uri() -> impl Strategy<Value = String> {
    "[a-z]{1,8}".prop_map(|s| format!("urn:{s}"))
}

fn arb_qname() -> impl Strategy<Value = QName> {
    (xml_name(), proptest::option::of(ns_uri())).prop_map(|(local, ns)| match ns {
        Some(ns) => QName::with_ns(ns, local),
        None => QName::new(local),
    })
}

fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (arb_qname(), proptest::collection::vec((xml_name(), xml_text()), 0..4), xml_text())
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::with_name(name);
            for (k, v) in attrs {
                e.set_attr(k, v);
            }
            if !text.is_empty() {
                e.set_text(text);
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (arb_qname(), proptest::collection::vec(inner, 0..4), xml_text()).prop_map(
            |(name, children, text)| {
                let mut e = Element::with_name(name);
                // Interleave one text run before children, mimicking mixed
                // content; adjacent text merging means at most one leading
                // run survives a parse, so keep it single.
                if !text.is_empty() {
                    e.set_text(text);
                }
                for c in children {
                    e.push_child(c);
                }
                e
            },
        )
    })
}

/// Normalise an element the way a parse does: empty text runs can not
/// survive serialisation.
fn normalise(e: &Element) -> Element {
    let mut out = Element::with_name(e.name().clone());
    for (k, v) in e.attributes() {
        out.set_qattr(k.clone(), v.clone());
    }
    for n in e.nodes() {
        match n {
            Node::Element(c) => out.push_child(normalise(c)),
            Node::Text(t) if !t.is_empty() => {
                let mut tmp = out;
                tmp = tmp.with_text(t.clone());
                out = tmp;
            }
            Node::Text(_) => {}
        }
    }
    out
}

proptest! {
    #[test]
    fn tree_roundtrips_through_serialisation(e in arb_element()) {
        let xml = e.to_xml_string();
        let parsed = Element::parse(&xml).expect("own output must parse");
        prop_assert_eq!(normalise(&e), parsed);
    }

    #[test]
    fn pretty_output_preserves_names_and_attrs(e in arb_element()) {
        let xml = e.to_pretty_string();
        let parsed = Element::parse(&xml).expect("pretty output must parse");
        prop_assert_eq!(parsed.name(), e.name());
        prop_assert_eq!(parsed.attributes().len(), e.attributes().len());
    }

    #[test]
    fn escape_unescape_text_roundtrip(s in xml_text()) {
        let escaped = escape::escape_text(&s);
        prop_assert_eq!(escape::unescape(&escaped, 0).unwrap().into_owned(), s);
    }

    #[test]
    fn escape_unescape_attr_roundtrip(s in xml_text()) {
        let escaped = escape::escape_attr(&s);
        prop_assert_eq!(escape::unescape(&escaped, 0).unwrap().into_owned(), s);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,200}") {
        // Errors are fine; panics are not.
        let _ = Element::parse(&s);
    }

    #[test]
    fn escaped_text_contains_no_specials(s in xml_text()) {
        let escaped = escape::escape_text(&s);
        prop_assert!(!escaped.contains('<'));
        // every '&' must begin an entity
        for (i, c) in escaped.char_indices() {
            if c == '&' {
                prop_assert!(escaped[i..].contains(';'));
            }
        }
    }
}
