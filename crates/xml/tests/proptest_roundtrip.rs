//! Property tests: any generated element tree serialises to XML that parses
//! back to an equal tree, and escaping round-trips arbitrary strings.
//! Runs on the in-tree `wsg_net::check` harness.

use wsg_net::check::{run, Gen};
use wsg_net::{prop_assert, prop_assert_eq};
use wsg_xml::tree::{Element, Node};
use wsg_xml::{escape, QName};

/// XML-legal text: printable ASCII plus a slice of Latin/Greek, filtered
/// through the XML 1.0 character rule.
fn xml_text(g: &mut Gen) -> String {
    let len = g.len_in(40);
    (0..len)
        .map(|_| {
            if g.bool(0.8) {
                char::from(g.u32(0x20..=0x7E) as u8)
            } else {
                char::from_u32(g.u32(0xA0..=0x2FF)).unwrap_or(' ')
            }
        })
        .filter(|c| escape::is_xml_char(*c))
        .collect()
}

fn xml_name(g: &mut Gen) -> String {
    const FIRST: &[char] = &[
        'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Q', 'Z', '_',
    ];
    const REST: &[char] = &[
        'a', 'e', 'k', 'n', 'p', 'v', 'Z', '0', '7', '9', '_', '.', '-',
    ];
    let mut name = g.pick(FIRST).to_string();
    let extra = g.len_in(12);
    name.extend((0..extra).map(|_| *g.pick(REST)));
    name
}

fn ns_uri(g: &mut Gen) -> String {
    const ALPHA: &[char] = &['a', 'b', 'g', 'm', 's', 'w', 'x', 'z'];
    let len = g.usize(1..=8);
    let tail: String = (0..len).map(|_| *g.pick(ALPHA)).collect();
    format!("urn:{tail}")
}

fn arb_qname(g: &mut Gen) -> QName {
    if g.bool(0.5) {
        QName::with_ns(ns_uri(g), xml_name(g))
    } else {
        QName::new(xml_name(g))
    }
}

fn arb_element(g: &mut Gen, depth: u32) -> Element {
    let mut e = Element::with_name(arb_qname(g));
    for _ in 0..g.len_in(3) {
        e.set_attr(xml_name(g), xml_text(g));
    }
    // One leading text run, mimicking mixed content; adjacent text merging
    // means at most one leading run survives a parse, so keep it single.
    let text = xml_text(g);
    if !text.is_empty() {
        e.set_text(text);
    }
    if depth > 0 {
        for _ in 0..g.len_in(3) {
            e.push_child(arb_element(g, depth - 1));
        }
    }
    e
}

/// Normalise an element the way a parse does: empty text runs can not
/// survive serialisation.
fn normalise(e: &Element) -> Element {
    let mut out = Element::with_name(e.name().clone());
    for (k, v) in e.attributes() {
        out.set_qattr(k.clone(), v.clone());
    }
    for n in e.nodes() {
        match n {
            Node::Element(c) => out.push_child(normalise(c)),
            Node::Text(t) if !t.is_empty() => {
                let mut tmp = out;
                tmp = tmp.with_text(t.clone());
                out = tmp;
            }
            Node::Text(_) => {}
        }
    }
    out
}

#[test]
fn tree_roundtrips_through_serialisation() {
    run("tree_roundtrips_through_serialisation", 64, |g| {
        let e = arb_element(g, 3);
        let xml = e.to_xml_string();
        let parsed = Element::parse(&xml).expect("own output must parse");
        prop_assert_eq!(normalise(&e), parsed);
        Ok(())
    });
}

#[test]
fn pretty_output_preserves_names_and_attrs() {
    run("pretty_output_preserves_names_and_attrs", 64, |g| {
        let e = arb_element(g, 3);
        let xml = e.to_pretty_string();
        let parsed = Element::parse(&xml).expect("pretty output must parse");
        prop_assert_eq!(parsed.name(), e.name());
        prop_assert_eq!(parsed.attributes().len(), e.attributes().len());
        Ok(())
    });
}

#[test]
fn escape_unescape_text_roundtrip() {
    run("escape_unescape_text_roundtrip", 64, |g| {
        let s = xml_text(g);
        let escaped = escape::escape_text(&s);
        prop_assert_eq!(escape::unescape(&escaped, 0).unwrap().into_owned(), s);
        Ok(())
    });
}

#[test]
fn escape_unescape_attr_roundtrip() {
    run("escape_unescape_attr_roundtrip", 64, |g| {
        let s = xml_text(g);
        let escaped = escape::escape_attr(&s);
        prop_assert_eq!(escape::unescape(&escaped, 0).unwrap().into_owned(), s);
        Ok(())
    });
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    run("parser_never_panics_on_arbitrary_input", 64, |g| {
        // Arbitrary unicode-ish soup. Errors are fine; panics are not.
        let len = g.len_in(200);
        let s: String = (0..len)
            .map(|_| char::from_u32(g.u32(0x01..=0xFFFF)).unwrap_or('\u{FFFD}'))
            .collect();
        let _ = Element::parse(&s);
        Ok(())
    });
}

#[test]
fn escaped_text_contains_no_specials() {
    run("escaped_text_contains_no_specials", 64, |g| {
        let s = xml_text(g);
        let escaped = escape::escape_text(&s);
        prop_assert!(!escaped.contains('<'));
        // every '&' must begin an entity
        for (i, c) in escaped.char_indices() {
            if c == '&' {
                prop_assert!(escaped[i..].contains(';'));
            }
        }
        Ok(())
    });
}
