//! Namespace-qualified names.

use std::borrow::Cow;
use std::fmt;

/// A namespace-qualified XML name: optional namespace URI, optional prefix
/// and a local part.
///
/// Equality and hashing consider the namespace URI and local name only — the
/// prefix is presentation, per the Namespaces in XML recommendation.
///
/// ```
/// use wsg_xml::QName;
///
/// let a = QName::with_ns("http://www.w3.org/2003/05/soap-envelope", "Envelope");
/// let b = a.clone().with_prefix("env");
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct QName {
    // Cow<'static, str> so recurring protocol names (WS-Addressing,
    // WS-Coordination, gossip headers) can be interned in statics and
    // cloned without allocating; ad-hoc names still own their strings.
    namespace: Option<Cow<'static, str>>,
    prefix: Option<Cow<'static, str>>,
    local: Cow<'static, str>,
}

impl QName {
    /// A name with no namespace.
    pub fn new(local: impl Into<String>) -> Self {
        QName { namespace: None, prefix: None, local: Cow::Owned(local.into()) }
    }

    /// A name in namespace `ns`.
    pub fn with_ns(ns: impl Into<String>, local: impl Into<String>) -> Self {
        QName {
            namespace: Some(Cow::Owned(ns.into())),
            prefix: None,
            local: Cow::Owned(local.into()),
        }
    }

    /// A statically known name in namespace `ns` with suggested `prefix`.
    ///
    /// `const`, so hot-path protocol names can live in `static`s; cloning
    /// such a name never allocates (all three parts stay borrowed).
    pub const fn interned(
        ns: &'static str,
        prefix: &'static str,
        local: &'static str,
    ) -> Self {
        QName {
            namespace: Some(Cow::Borrowed(ns)),
            prefix: Some(Cow::Borrowed(prefix)),
            local: Cow::Borrowed(local),
        }
    }

    /// A statically known name with no namespace (see [`QName::interned`]).
    pub const fn interned_local(local: &'static str) -> Self {
        QName { namespace: None, prefix: None, local: Cow::Borrowed(local) }
    }

    /// Attach a suggested prefix (presentation only).
    pub fn with_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.prefix = Some(Cow::Owned(prefix.into()));
        self
    }

    /// Split a lexical `prefix:local` form into `(Some(prefix), local)` or
    /// `(None, name)`.
    pub fn split_lexical(lexical: &str) -> (Option<&str>, &str) {
        match lexical.split_once(':') {
            Some((p, l)) => (Some(p), l),
            None => (None, lexical),
        }
    }

    /// The namespace URI, if any.
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// The suggested/parsed prefix, if any.
    pub fn prefix(&self) -> Option<&str> {
        self.prefix.as_deref()
    }

    /// The local part.
    pub fn local(&self) -> &str {
        &self.local
    }

    /// True when namespace URI and local part both match.
    pub fn matches(&self, ns: Option<&str>, local: &str) -> bool {
        self.namespace.as_deref() == ns && self.local == local
    }

    /// The lexical form as written in a document (`prefix:local` or `local`).
    pub fn lexical(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{p}:{}", self.local),
            None => self.local.clone().into_owned(),
        }
    }
}

impl PartialEq for QName {
    fn eq(&self, other: &Self) -> bool {
        self.namespace == other.namespace && self.local == other.local
    }
}

impl Eq for QName {}

impl std::hash::Hash for QName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.namespace.hash(state);
        self.local.hash(state);
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.namespace {
            Some(ns) => write!(f, "{{{ns}}}{}", self.local),
            None => write!(f, "{}", self.local),
        }
    }
}

impl From<&str> for QName {
    fn from(s: &str) -> Self {
        QName::new(s)
    }
}

impl From<String> for QName {
    fn from(s: String) -> Self {
        QName::new(s)
    }
}

/// A stack of in-scope namespace declarations used by both the reader and
/// the writer to resolve prefixes.
#[derive(Debug, Clone, Default)]
pub struct NamespaceScope {
    // (depth, prefix, uri); "" prefix is the default namespace.
    bindings: Vec<(usize, String, String)>,
    depth: usize,
}

impl NamespaceScope {
    /// A scope with only the implicit `xml` binding.
    pub fn new() -> Self {
        NamespaceScope {
            bindings: vec![(0, "xml".to_string(), crate::XML_NS.to_string())],
            depth: 0,
        }
    }

    /// Enter an element scope.
    pub fn push_scope(&mut self) {
        self.depth += 1;
    }

    /// Leave an element scope, dropping its declarations.
    pub fn pop_scope(&mut self) {
        while matches!(self.bindings.last(), Some((d, _, _)) if *d == self.depth) {
            self.bindings.pop();
        }
        self.depth = self.depth.saturating_sub(1);
    }

    /// Declare `prefix` (empty for the default namespace) as `uri` in the
    /// current scope.
    pub fn declare(&mut self, prefix: &str, uri: &str) {
        self.bindings.push((self.depth, prefix.to_string(), uri.to_string()));
    }

    /// Resolve a prefix (empty string = default namespace) to a URI.
    ///
    /// An unbound default namespace resolves to `Some("")`→`None`: we return
    /// `None` when nothing is declared, and `Some("")` is normalised to
    /// `None` by callers treating it as "no namespace".
    pub fn resolve(&self, prefix: &str) -> Option<&str> {
        self.resolve_with_depth(prefix).map(|(_, uri)| uri)
    }

    /// Like [`resolve`](Self::resolve), but also reporting the scope depth
    /// the winning binding was declared at (0 = the implicit `xml`
    /// binding). Lets callers distinguish bindings inherited from ancestor
    /// elements from ones declared within a subtree of interest.
    pub fn resolve_with_depth(&self, prefix: &str) -> Option<(usize, &str)> {
        self.bindings
            .iter()
            .rev()
            .find(|(_, p, _)| p == prefix)
            .map(|(depth, _, uri)| (*depth, uri.as_str()))
    }

    /// Find a prefix already bound to `uri`, preferring the innermost.
    pub fn prefix_for(&self, uri: &str) -> Option<&str> {
        self.bindings
            .iter()
            .rev()
            .find(|(_, p, u)| u == uri && self.resolve(p) == Some(uri))
            .map(|(_, p, _)| p.as_str())
    }

    /// Nesting depth of the current scope.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_prefix() {
        let a = QName::with_ns("urn:x", "Item").with_prefix("a");
        let b = QName::with_ns("urn:x", "Item").with_prefix("b");
        assert_eq!(a, b);
        let c = QName::with_ns("urn:y", "Item");
        assert_ne!(a, c);
    }

    #[test]
    fn display_clark_notation() {
        assert_eq!(QName::with_ns("urn:x", "Item").to_string(), "{urn:x}Item");
        assert_eq!(QName::new("Item").to_string(), "Item");
    }

    #[test]
    fn lexical_split() {
        assert_eq!(QName::split_lexical("env:Body"), (Some("env"), "Body"));
        assert_eq!(QName::split_lexical("Body"), (None, "Body"));
    }

    #[test]
    fn scope_resolution_shadows_and_pops() {
        let mut scope = NamespaceScope::new();
        scope.push_scope();
        scope.declare("a", "urn:outer");
        scope.push_scope();
        scope.declare("a", "urn:inner");
        assert_eq!(scope.resolve("a"), Some("urn:inner"));
        scope.pop_scope();
        assert_eq!(scope.resolve("a"), Some("urn:outer"));
        scope.pop_scope();
        assert_eq!(scope.resolve("a"), None);
    }

    #[test]
    fn xml_prefix_is_predeclared() {
        let scope = NamespaceScope::new();
        assert_eq!(scope.resolve("xml"), Some(crate::XML_NS));
    }

    #[test]
    fn prefix_lookup_ignores_shadowed_bindings() {
        let mut scope = NamespaceScope::new();
        scope.push_scope();
        scope.declare("p", "urn:one");
        scope.push_scope();
        scope.declare("p", "urn:two");
        // "p" now means urn:two, so it is not a usable prefix for urn:one.
        assert_eq!(scope.prefix_for("urn:one"), None);
        assert_eq!(scope.prefix_for("urn:two"), Some("p"));
    }
}
