use std::fmt;

/// Error raised while parsing or writing XML.
///
/// Carries the byte offset into the input at which the problem was detected
/// (0 for writer-side errors, which have no input position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    position: usize,
}

/// The specific class of XML failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A syntactic construct was malformed.
    Malformed(String),
    /// Close tag did not match the open tag.
    MismatchedTag { expected: String, found: String },
    /// A namespace prefix was used without being declared.
    UndeclaredPrefix(String),
    /// An entity reference was not one of the five predefined ones
    /// and not a character reference.
    UnknownEntity(String),
    /// The same attribute appeared twice on one element.
    DuplicateAttribute(String),
    /// A name contained characters not allowed in XML names.
    InvalidName(String),
    /// Writer misuse: e.g. closing an element that was never opened.
    WriterState(String),
    /// A feature of XML 1.0 this crate deliberately rejects (DTD, external
    /// entities) was encountered.
    Unsupported(String),
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, position: usize) -> Self {
        XmlError { kind, position }
    }

    /// The class of failure.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }

    /// Byte offset into the input at which the error was detected.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::Malformed(what) => write!(f, "malformed xml: {what}"),
            XmlErrorKind::MismatchedTag { expected, found } => {
                write!(f, "mismatched close tag: expected </{expected}>, found </{found}>")
            }
            XmlErrorKind::UndeclaredPrefix(p) => write!(f, "undeclared namespace prefix '{p}'"),
            XmlErrorKind::UnknownEntity(e) => write!(f, "unknown entity reference '&{e};'"),
            XmlErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute '{a}'"),
            XmlErrorKind::InvalidName(n) => write!(f, "invalid xml name '{n}'"),
            XmlErrorKind::WriterState(w) => write!(f, "writer misuse: {w}"),
            XmlErrorKind::Unsupported(w) => write!(f, "unsupported xml feature: {w}"),
        }?;
        if self.position != 0 {
            write!(f, " at byte {}", self.position)?;
        }
        Ok(())
    }
}

impl std::error::Error for XmlError {}
