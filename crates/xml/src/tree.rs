//! In-memory element tree built on the reader/writer.

use crate::error::XmlError;
use crate::event::XmlEvent;
use crate::name::QName;
use crate::reader::XmlReader;
use crate::writer::XmlWriter;

/// A node in an element's content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Child element.
    Element(Element),
    /// Character data (text and CDATA merged).
    Text(String),
}

/// An in-memory XML element: name, attributes, explicit namespace
/// declarations and ordered content.
///
/// This is the working representation for SOAP headers and bodies — small
/// documents where tree convenience beats streaming.
///
/// ```
/// use wsg_xml::Element;
///
/// let mut order = Element::new("order");
/// order.set_attr("id", "42");
/// order.push_child(Element::text_node("symbol", "ACME"));
/// assert_eq!(order.child("symbol").unwrap().text(), "ACME");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    name: QName,
    attributes: Vec<(QName, String)>,
    namespaces: Vec<(String, String)>, // (prefix, uri) explicit declarations
    content: Vec<Node>,
}

impl Element {
    /// An element with an unqualified name.
    pub fn new(local: impl Into<String>) -> Self {
        Element {
            name: QName::new(local),
            attributes: Vec::new(),
            namespaces: Vec::new(),
            content: Vec::new(),
        }
    }

    /// An element with a full [`QName`].
    pub fn with_name(name: QName) -> Self {
        Element { name, attributes: Vec::new(), namespaces: Vec::new(), content: Vec::new() }
    }

    /// An element in namespace `ns` with suggested `prefix`.
    pub fn in_ns(prefix: &str, ns: &str, local: impl Into<String>) -> Self {
        Element::with_name(QName::with_ns(ns, local).with_prefix(prefix))
    }

    /// Leaf element containing only `text`.
    pub fn text_node(local: impl Into<String>, text: impl Into<String>) -> Self {
        let mut e = Element::new(local);
        e.set_text(text);
        e
    }

    /// Builder-style: attach an explicit namespace declaration.
    pub fn with_namespace(mut self, prefix: &str, uri: &str) -> Self {
        self.namespaces.push((prefix.to_string(), uri.to_string()));
        self
    }

    /// Builder-style: add an attribute.
    pub fn with_attr(mut self, name: impl Into<QName>, value: impl Into<String>) -> Self {
        self.set_qattr(name.into(), value);
        self
    }

    /// Builder-style: append a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.push_child(child);
        self
    }

    /// Builder-style: append text content.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.content.push(Node::Text(text.into()));
        self
    }

    /// The element name.
    pub fn name(&self) -> &QName {
        &self.name
    }

    /// Local part of the name.
    pub fn local_name(&self) -> &str {
        self.name.local()
    }

    /// All attributes in document order.
    pub fn attributes(&self) -> &[(QName, String)] {
        &self.attributes
    }

    /// Value of the attribute with unqualified name `name`.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(q, _)| q.namespace().is_none() && q.local() == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of the attribute with qualified name (`ns`, `local`).
    pub fn attr_ns(&self, ns: &str, local: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(q, _)| q.matches(Some(ns), local))
            .map(|(_, v)| v.as_str())
    }

    /// Set an unqualified attribute, replacing any existing value.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.set_qattr(QName::new(name.into()), value);
    }

    /// Set a qualified attribute, replacing any existing value.
    pub fn set_qattr(&mut self, name: QName, value: impl Into<String>) {
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(q, _)| *q == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Ordered content nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.content
    }

    /// Child elements only.
    pub fn children(&self) -> Vec<&Element> {
        self.content
            .iter()
            .filter_map(|n| match n {
                Node::Element(e) => Some(e),
                Node::Text(_) => None,
            })
            .collect()
    }

    /// First child element with local name `local` (any namespace).
    pub fn child(&self, local: &str) -> Option<&Element> {
        self.content.iter().find_map(|n| match n {
            Node::Element(e) if e.local_name() == local => Some(e),
            _ => None,
        })
    }

    /// First child element matching namespace + local name.
    pub fn child_ns(&self, ns: &str, local: &str) -> Option<&Element> {
        self.content.iter().find_map(|n| match n {
            Node::Element(e) if e.name.matches(Some(ns), local) => Some(e),
            _ => None,
        })
    }

    /// Mutable access to the first child with local name `local`.
    pub fn child_mut(&mut self, local: &str) -> Option<&mut Element> {
        self.content.iter_mut().find_map(|n| match n {
            Node::Element(e) if e.local_name() == local => Some(e),
            _ => None,
        })
    }

    /// All child elements with local name `local`.
    pub fn children_named(&self, local: &str) -> Vec<&Element> {
        self.content
            .iter()
            .filter_map(|n| match n {
                Node::Element(e) if e.local_name() == local => Some(e),
                _ => None,
            })
            .collect()
    }

    /// Append a child element.
    pub fn push_child(&mut self, child: Element) {
        self.content.push(Node::Element(child));
    }

    /// Remove all children with local name `local`; returns how many were
    /// removed.
    pub fn remove_children(&mut self, local: &str) -> usize {
        let before = self.content.len();
        self.content.retain(|n| !matches!(n, Node::Element(e) if e.local_name() == local));
        before - self.content.len()
    }

    /// Replace the first child with local name `local`, or append when
    /// absent. Returns the previous child if one was replaced.
    pub fn replace_child(&mut self, child: Element) -> Option<Element> {
        let local = child.local_name().to_string();
        for node in &mut self.content {
            if let Node::Element(existing) = node {
                if existing.local_name() == local {
                    return Some(std::mem::replace(existing, child));
                }
            }
        }
        self.push_child(child);
        None
    }

    /// Concatenated text content of this element (direct text nodes only).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.content {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Replace all content with a single text node.
    pub fn set_text(&mut self, text: impl Into<String>) {
        self.content.clear();
        self.content.push(Node::Text(text.into()));
    }

    /// True when the element has no content.
    pub fn is_empty(&self) -> bool {
        self.content.is_empty()
    }

    /// Total number of elements in this subtree, including self.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .content
            .iter()
            .map(|n| match n {
                Node::Element(e) => e.subtree_size(),
                Node::Text(_) => 0,
            })
            .sum::<usize>()
    }

    /// Parse a document and return its root element.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`XmlError`] for malformed documents.
    pub fn parse(input: &str) -> Result<Element, XmlError> {
        let mut reader = XmlReader::new(input);
        let root = loop {
            match reader.next_event()? {
                XmlEvent::StartElement { name, attributes, .. } => {
                    break Self::from_reader(&mut reader, name, attributes)?;
                }
                XmlEvent::Eof => {
                    return Err(XmlError::new(
                        crate::error::XmlErrorKind::UnexpectedEof,
                        reader.position(),
                    ))
                }
                _ => {}
            }
        };
        // Drain the epilogue so trailing junk (a second root, stray text)
        // is rejected rather than silently ignored.
        loop {
            match reader.next_event()? {
                XmlEvent::Eof => return Ok(root),
                XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction { .. } => {}
                other => {
                    return Err(XmlError::new(
                        crate::error::XmlErrorKind::Malformed(format!(
                            "content after root element: {other:?}"
                        )),
                        reader.position(),
                    ))
                }
            }
        }
    }

    /// Build the subtree for a [`XmlEvent::StartElement`] the caller has
    /// already pulled from `reader`, consuming events through the matching
    /// end tag. Paired with [`XmlReader::position`] this lets streaming
    /// consumers (e.g. the SOAP batch unwrapper) recover each subtree's
    /// exact byte span in the source document instead of re-serialising
    /// the finished tree.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`XmlError`] for malformed content.
    pub fn from_start_event(
        reader: &mut XmlReader<'_>,
        name: QName,
        attributes: Vec<crate::event::Attribute>,
    ) -> Result<Element, XmlError> {
        Self::from_reader(reader, name, attributes)
    }

    fn from_reader(
        reader: &mut XmlReader<'_>,
        name: QName,
        attributes: Vec<crate::event::Attribute>,
    ) -> Result<Element, XmlError> {
        let mut element = Element::with_name(name);
        element.attributes = attributes.into_iter().map(|a| (a.name, a.value)).collect();
        loop {
            match reader.next_event()? {
                XmlEvent::StartElement { name, attributes, .. } => {
                    let child = Self::from_reader(reader, name, attributes)?;
                    element.content.push(Node::Element(child));
                }
                XmlEvent::EndElement { .. } => return Ok(element),
                XmlEvent::Text(t) | XmlEvent::CData(t) => {
                    // Merge adjacent text runs for a canonical tree.
                    if let Some(Node::Text(prev)) = element.content.last_mut() {
                        prev.push_str(&t);
                    } else {
                        element.content.push(Node::Text(t));
                    }
                }
                XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction { .. } => {}
                XmlEvent::Declaration { .. } => {}
                XmlEvent::Eof => {
                    return Err(XmlError::new(
                        crate::error::XmlErrorKind::UnexpectedEof,
                        reader.position(),
                    ))
                }
            }
        }
    }

    /// Serialise this element as a compact document string.
    pub fn to_xml_string(&self) -> String {
        let mut w = XmlWriter::new();
        self.write_into(&mut w).expect("element tree is always writable");
        w.finish().expect("element tree is always balanced")
    }

    /// Serialise with indentation (for logs and docs).
    pub fn to_pretty_string(&self) -> String {
        let mut w = XmlWriter::pretty("  ");
        self.write_into(&mut w).expect("element tree is always writable");
        w.finish().expect("element tree is always balanced")
    }

    /// Write this element into an open [`XmlWriter`].
    ///
    /// # Errors
    ///
    /// Propagates writer errors (e.g. invalid names).
    pub fn write_into(&self, w: &mut XmlWriter) -> Result<(), XmlError> {
        w.start_element(&self.name)?;
        for (prefix, uri) in &self.namespaces {
            w.declare_namespace(prefix, uri)?;
        }
        for (name, value) in &self.attributes {
            w.attribute(name, value)?;
        }
        for node in &self.content {
            match node {
                Node::Element(e) => e.write_into(w)?,
                Node::Text(t) => w.text(t)?,
            }
        }
        w.end_element()
    }

    /// Byte length of the compact serialisation — the "wire size" used by
    /// the simulator's bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        self.to_xml_string().len()
    }

    /// Select descendant elements by a `/`-separated path of local names;
    /// `*` matches any name at that step. Namespaces are ignored (local
    /// names only) — the 90% case for plucking values out of SOAP bodies.
    ///
    /// ```
    /// use wsg_xml::Element;
    ///
    /// # fn main() -> Result<(), wsg_xml::XmlError> {
    /// let doc = Element::parse("<r><a><v>1</v></a><b><v>2</v></b></r>")?;
    /// let values: Vec<String> = doc.select("*/v").iter().map(|e| e.text()).collect();
    /// assert_eq!(values, ["1", "2"]);
    /// assert_eq!(doc.select("a/v")[0].text(), "1");
    /// assert!(doc.select("a/missing").is_empty());
    /// # Ok(())
    /// # }
    /// ```
    pub fn select(&self, path: &str) -> Vec<&Element> {
        let steps: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let mut current: Vec<&Element> = vec![self];
        for step in steps {
            let mut next = Vec::new();
            for element in current {
                for child in element.children() {
                    if step == "*" || child.local_name() == step {
                        next.push(child);
                    }
                }
            }
            current = next;
        }
        if current.len() == 1 && std::ptr::eq(current[0], self) {
            // Empty path selects nothing rather than self.
            return Vec::new();
        }
        current
    }

    /// Text of the first element matched by [`Element::select`], if any.
    pub fn select_text(&self, path: &str) -> Option<String> {
        self.select(path).first().map(|e| e.text())
    }
}

impl std::fmt::Display for Element {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_xml_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_navigate() {
        let tick = Element::new("tick")
            .with_attr("seq", "9")
            .with_child(Element::text_node("symbol", "ACME"))
            .with_child(Element::text_node("price", "101.25"));
        assert_eq!(tick.attr("seq"), Some("9"));
        assert_eq!(tick.child("price").unwrap().text(), "101.25");
        assert_eq!(tick.children().len(), 2);
        assert_eq!(tick.subtree_size(), 3);
    }

    #[test]
    fn parse_round_trip() {
        let xml = "<a id=\"1\"><b>x &amp; y</b><b>z</b></a>";
        let root = Element::parse(xml).unwrap();
        assert_eq!(root.children_named("b").len(), 2);
        assert_eq!(root.children_named("b")[0].text(), "x & y");
        let reparsed = Element::parse(&root.to_xml_string()).unwrap();
        assert_eq!(root, reparsed);
    }

    #[test]
    fn namespaced_round_trip() {
        let xml = "<e:Envelope xmlns:e=\"urn:env\"><e:Body><op xmlns=\"urn:app\">v</op></e:Body></e:Envelope>";
        let root = Element::parse(xml).unwrap();
        assert_eq!(root.name().namespace(), Some("urn:env"));
        let body = root.child_ns("urn:env", "Body").unwrap();
        let op = body.child_ns("urn:app", "op").unwrap();
        assert_eq!(op.text(), "v");
        let reparsed = Element::parse(&root.to_xml_string()).unwrap();
        assert_eq!(root, reparsed);
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("a");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attr("k"), Some("2"));
        assert_eq!(e.attributes().len(), 1);
    }

    #[test]
    fn text_merges_adjacent_runs_on_parse() {
        let root = Element::parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        assert_eq!(root.nodes().len(), 1);
        assert_eq!(root.text(), "xyz");
    }

    #[test]
    fn comments_dropped_on_parse() {
        let root = Element::parse("<a><!-- c --><b/></a>").unwrap();
        assert_eq!(root.children().len(), 1);
    }

    #[test]
    fn display_is_compact_xml() {
        let e = Element::text_node("a", "t");
        assert_eq!(e.to_string(), "<a>t</a>");
    }

    #[test]
    fn wire_size_positive() {
        assert!(Element::new("a").wire_size() >= "<a/>".len());
    }

    #[test]
    fn remove_and_replace_children() {
        let mut e = Element::parse("<a><b>1</b><c/><b>2</b></a>").unwrap();
        assert_eq!(e.remove_children("b"), 2);
        assert_eq!(e.children().len(), 1);
        let old = e.replace_child(Element::text_node("c", "new"));
        assert!(old.is_some());
        assert_eq!(e.child("c").unwrap().text(), "new");
        let none = e.replace_child(Element::text_node("d", "x"));
        assert!(none.is_none());
        assert_eq!(e.children().len(), 2);
    }

    #[test]
    fn select_walks_paths() {
        let doc = Element::parse(
            "<envelope><body><tick><symbol>ACME</symbol><price>10</price></tick>             <tick><symbol>OTHR</symbol></tick></body></envelope>",
        )
        .unwrap();
        assert_eq!(doc.select("body/tick").len(), 2);
        assert_eq!(doc.select("body/tick/symbol")[0].text(), "ACME");
        assert_eq!(doc.select_text("body/tick/price").as_deref(), Some("10"));
        assert_eq!(doc.select("*/*/symbol").len(), 2);
        assert!(doc.select("nope").is_empty());
        assert!(doc.select("").is_empty(), "empty path selects nothing");
    }

    #[test]
    fn select_ignores_namespaces() {
        let doc = Element::parse("<r xmlns=\"urn:x\"><v>1</v></r>").unwrap();
        assert_eq!(doc.select("v").len(), 1);
    }
}
