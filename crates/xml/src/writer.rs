//! A streaming XML writer with namespace management.

use std::fmt::Write as _;

use crate::error::{XmlError, XmlErrorKind};
use crate::escape::{escape_attr_into, escape_text_into, validate_name};
use crate::name::{NamespaceScope, QName};

/// Streaming writer producing a well-formed document into a `String`.
///
/// Namespace declarations are emitted automatically: writing an element or
/// attribute whose [`QName`] carries a namespace that is not yet in scope
/// declares it on that element, using the name's suggested prefix when
/// available and a generated `ns{N}` prefix otherwise.
///
/// ```
/// use wsg_xml::{XmlWriter, QName};
///
/// # fn main() -> Result<(), wsg_xml::XmlError> {
/// let mut w = XmlWriter::new();
/// w.start_element(&QName::with_ns("urn:x", "root").with_prefix("x"))?;
/// w.text("hello")?;
/// w.end_element()?;
/// assert_eq!(w.finish()?, "<x:root xmlns:x=\"urn:x\">hello</x:root>");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct XmlWriter {
    out: String,
    scope: NamespaceScope,
    // Open-element lexical names live concatenated in `open_names`;
    // `open` holds each name's start offset. One growing arena instead of
    // one String allocation per nested element.
    open: Vec<usize>,
    open_names: String,
    // The current start tag is still open (attributes may be added).
    tag_open: bool,
    root_closed: bool,
    generated: usize,
    indent: Option<String>,
    // True when the last thing written inside the current element was
    // character data (suppresses indentation of the close tag).
    mixed: Vec<bool>,
    // Reusable scratch for qualified_buf: the lexical form of the name
    // being written and any xmlns declaration it needs.
    lex_buf: String,
    decl_buf: String,
}

impl Default for XmlWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl XmlWriter {
    /// A writer producing compact output.
    pub fn new() -> Self {
        XmlWriter {
            out: String::new(),
            scope: NamespaceScope::new(),
            open: Vec::new(),
            open_names: String::new(),
            tag_open: false,
            root_closed: false,
            generated: 0,
            indent: None,
            mixed: Vec::new(),
            lex_buf: String::new(),
            decl_buf: String::new(),
        }
    }

    /// A writer that serializes into `buf`, cleared first. [`finish`]
    /// returns the same allocation, so callers serializing many documents
    /// can round-trip one buffer and avoid a fresh `String` per document.
    ///
    /// [`finish`]: XmlWriter::finish
    pub fn new_into(mut buf: String) -> Self {
        buf.clear();
        let mut w = Self::new();
        w.out = buf;
        w
    }

    /// A writer that pretty-prints with the given indent unit.
    pub fn pretty(indent: &str) -> Self {
        let mut w = Self::new();
        w.indent = Some(indent.to_string());
        w
    }

    /// Emit the `<?xml version="1.0" encoding="UTF-8"?>` declaration.
    ///
    /// # Errors
    ///
    /// Fails if any content was already written.
    pub fn declaration(&mut self) -> Result<(), XmlError> {
        if !self.out.is_empty() {
            return Err(self.misuse("declaration must be first"));
        }
        self.out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if self.indent.is_some() {
            self.out.push('\n');
        }
        Ok(())
    }

    /// Open an element.
    ///
    /// # Errors
    ///
    /// Fails on invalid names or writing a second root element.
    pub fn start_element(&mut self, name: &QName) -> Result<(), XmlError> {
        self.close_pending_tag(false)?;
        if self.open.is_empty() && self.root_closed {
            return Err(self.misuse("document already has a root element"));
        }
        self.newline_indent();
        self.scope.push_scope();
        self.qualified_buf(name, false)?;
        self.out.push('<');
        self.out.push_str(&self.lex_buf);
        self.out.push_str(&self.decl_buf);
        self.open.push(self.open_names.len());
        self.open_names.push_str(&self.lex_buf);
        self.tag_open = true;
        self.mixed.push(false);
        Ok(())
    }

    /// Add an attribute to the element just opened.
    ///
    /// # Errors
    ///
    /// Fails if no start tag is open (i.e. content has already been
    /// written), or the name is invalid.
    pub fn attribute(&mut self, name: &QName, value: &str) -> Result<(), XmlError> {
        if !self.tag_open {
            return Err(self.misuse("attribute written outside a start tag"));
        }
        self.qualified_buf(name, true)?;
        self.out.push_str(&self.decl_buf);
        self.out.push(' ');
        self.out.push_str(&self.lex_buf);
        self.out.push_str("=\"");
        escape_attr_into(&mut self.out, value);
        self.out.push('"');
        Ok(())
    }

    /// Explicitly declare a namespace prefix on the open element.
    ///
    /// # Errors
    ///
    /// Fails if no start tag is open.
    pub fn declare_namespace(&mut self, prefix: &str, uri: &str) -> Result<(), XmlError> {
        if !self.tag_open {
            return Err(self.misuse("namespace declaration outside a start tag"));
        }
        if !prefix.is_empty() {
            validate_name(prefix)?;
        }
        if self.scope.resolve(prefix) == Some(uri) {
            return Ok(()); // already in scope with the same meaning
        }
        self.scope.declare(prefix, uri);
        if prefix.is_empty() {
            self.out.push_str(" xmlns=\"");
        } else {
            self.out.push_str(" xmlns:");
            self.out.push_str(prefix);
            self.out.push_str("=\"");
        }
        escape_attr_into(&mut self.out, uri);
        self.out.push('"');
        Ok(())
    }

    /// Write character data (escaped).
    ///
    /// # Errors
    ///
    /// Fails outside the root element.
    pub fn text(&mut self, text: &str) -> Result<(), XmlError> {
        self.close_pending_tag(false)?;
        if self.open.is_empty() {
            return Err(self.misuse("text outside root element"));
        }
        if let Some(m) = self.mixed.last_mut() {
            *m = true;
        }
        escape_text_into(&mut self.out, text);
        Ok(())
    }

    /// Write a CDATA section. The content must not contain `]]>`.
    ///
    /// # Errors
    ///
    /// Fails outside the root element or when content contains `]]>`.
    pub fn cdata(&mut self, text: &str) -> Result<(), XmlError> {
        self.close_pending_tag(false)?;
        if self.open.is_empty() {
            return Err(self.misuse("cdata outside root element"));
        }
        if text.contains("]]>") {
            return Err(self.misuse("']]>' inside cdata"));
        }
        if let Some(m) = self.mixed.last_mut() {
            *m = true;
        }
        // wsg_lint: allow(E2) — fmt::Write to a String is infallible
        let _ = write!(self.out, "<![CDATA[{text}]]>");
        Ok(())
    }

    /// Write a comment. Must not contain `--`.
    ///
    /// # Errors
    ///
    /// Fails when the comment contains `--`.
    pub fn comment(&mut self, text: &str) -> Result<(), XmlError> {
        if text.contains("--") {
            return Err(self.misuse("'--' inside comment"));
        }
        self.close_pending_tag(false)?;
        self.newline_indent();
        // wsg_lint: allow(E2) — fmt::Write to a String is infallible
        let _ = write!(self.out, "<!--{text}-->");
        Ok(())
    }

    /// Close the innermost open element.
    ///
    /// # Errors
    ///
    /// Fails if no element is open.
    pub fn end_element(&mut self) -> Result<(), XmlError> {
        if self.tag_open {
            // <a ...  />  — self-close
            self.out.push_str("/>");
            self.tag_open = false;
            if let Some(start) = self.open.pop() {
                self.open_names.truncate(start);
            }
            self.mixed.pop();
            self.scope.pop_scope();
        } else {
            let start = self
                .open
                .pop()
                .ok_or_else(|| self.misuse("end_element with no open element"))?;
            let was_mixed = self.mixed.pop().unwrap_or(false);
            if !was_mixed {
                self.newline_indent();
            }
            self.out.push_str("</");
            self.out.push_str(&self.open_names[start..]);
            self.out.push('>');
            self.open_names.truncate(start);
            self.scope.pop_scope();
        }
        if self.open.is_empty() {
            self.root_closed = true;
        }
        Ok(())
    }

    /// Convenience: `start_element` + `text` + `end_element`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer errors.
    pub fn text_element(&mut self, name: &QName, text: &str) -> Result<(), XmlError> {
        self.start_element(name)?;
        if !text.is_empty() {
            self.text(text)?;
        }
        self.end_element()
    }

    /// Finish the document and return the XML string.
    ///
    /// # Errors
    ///
    /// Fails if elements remain open or no root was written.
    pub fn finish(mut self) -> Result<String, XmlError> {
        if self.tag_open || !self.open.is_empty() {
            return Err(self.misuse("finish with unclosed elements"));
        }
        if !self.root_closed {
            return Err(self.misuse("finish with no root element"));
        }
        if self.indent.is_some() && !self.out.ends_with('\n') {
            self.out.push('\n');
        }
        Ok(self.out)
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    fn close_pending_tag(&mut self, _self_close: bool) -> Result<(), XmlError> {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
        Ok(())
    }

    fn newline_indent(&mut self) {
        if let Some(unit) = &self.indent {
            if !self.out.is_empty() {
                self.out.push('\n');
                let depth = self.open.len();
                for _ in 0..depth {
                    self.out.push_str(unit);
                }
            }
        }
    }

    /// Fill `lex_buf` with the lexical (possibly prefixed) form of `name`
    /// and `decl_buf` with the `xmlns` declaration text to splice into the
    /// open start tag when the namespace is not yet in scope (empty when no
    /// declaration is needed). Reuses the two scratch buffers so the hot
    /// path allocates nothing. `is_attr`: unprefixed attributes are in no
    /// namespace, so attributes in a namespace always need a prefix.
    fn qualified_buf(&mut self, name: &QName, is_attr: bool) -> Result<(), XmlError> {
        self.lex_buf.clear();
        self.decl_buf.clear();
        validate_name(name.local())?;
        let ns = match name.namespace() {
            Some(ns) if !ns.is_empty() => ns,
            _ => {
                // No namespace. For elements, make sure no default ns is in
                // scope that would capture this name.
                if !is_attr {
                    let shadowed =
                        matches!(self.scope.resolve(""), Some(uri) if !uri.is_empty());
                    if shadowed {
                        self.scope.declare("", "");
                        self.decl_buf.push_str(" xmlns=\"\"");
                    }
                }
                self.lex_buf.push_str(name.local());
                return Ok(());
            }
        };

        // Already bound?
        if let Some(p) = self.scope.prefix_for(ns) {
            if p.is_empty() {
                if is_attr {
                    // default ns does not apply to attributes; fall through
                    // to declare a real prefix.
                } else {
                    self.lex_buf.push_str(name.local());
                    return Ok(());
                }
            } else {
                self.lex_buf.push_str(p);
                self.lex_buf.push(':');
                self.lex_buf.push_str(name.local());
                return Ok(());
            }
        }

        // Need a declaration on this element.
        let generated;
        let prefix: &str = match name.prefix() {
            Some(p)
                if !p.is_empty()
                    && (self.scope.resolve(p).is_none()
                        || self.scope.resolve(p) == Some(ns)) =>
            {
                p
            }
            _ => {
                self.generated += 1;
                generated = format!("ns{}", self.generated);
                &generated
            }
        };
        if self.scope.resolve(prefix) != Some(ns) {
            self.scope.declare(prefix, ns);
            self.decl_buf.push_str(" xmlns:");
            self.decl_buf.push_str(prefix);
            self.decl_buf.push_str("=\"");
            escape_attr_into(&mut self.decl_buf, ns);
            self.decl_buf.push('"');
        }
        self.lex_buf.push_str(prefix);
        self.lex_buf.push(':');
        self.lex_buf.push_str(name.local());
        Ok(())
    }

    fn misuse(&self, msg: &str) -> XmlError {
        XmlError::new(XmlErrorKind::WriterState(msg.to_string()), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_element_with_text() {
        let mut w = XmlWriter::new();
        w.start_element(&QName::new("a")).unwrap();
        w.text("x < y").unwrap();
        w.end_element().unwrap();
        assert_eq!(w.finish().unwrap(), "<a>x &lt; y</a>");
    }

    #[test]
    fn self_closing_when_empty() {
        let mut w = XmlWriter::new();
        w.start_element(&QName::new("a")).unwrap();
        w.attribute(&QName::new("id"), "1").unwrap();
        w.end_element().unwrap();
        assert_eq!(w.finish().unwrap(), "<a id=\"1\"/>");
    }

    #[test]
    fn namespace_autodeclared_with_suggested_prefix() {
        let mut w = XmlWriter::new();
        let name = QName::with_ns("urn:x", "a").with_prefix("x");
        w.start_element(&name).unwrap();
        w.start_element(&QName::with_ns("urn:x", "b")).unwrap();
        w.end_element().unwrap();
        w.end_element().unwrap();
        assert_eq!(w.finish().unwrap(), "<x:a xmlns:x=\"urn:x\"><x:b/></x:a>");
    }

    #[test]
    fn namespace_generated_prefix_when_needed() {
        let mut w = XmlWriter::new();
        w.start_element(&QName::with_ns("urn:x", "a")).unwrap();
        w.end_element().unwrap();
        assert_eq!(w.finish().unwrap(), "<ns1:a xmlns:ns1=\"urn:x\"/>");
    }

    #[test]
    fn attribute_in_namespace_gets_prefix() {
        let mut w = XmlWriter::new();
        w.start_element(&QName::new("a")).unwrap();
        w.attribute(&QName::with_ns("urn:x", "id").with_prefix("x"), "7").unwrap();
        w.end_element().unwrap();
        assert_eq!(w.finish().unwrap(), "<a xmlns:x=\"urn:x\" x:id=\"7\"/>");
    }

    #[test]
    fn attribute_after_content_rejected() {
        let mut w = XmlWriter::new();
        w.start_element(&QName::new("a")).unwrap();
        w.text("t").unwrap();
        assert!(w.attribute(&QName::new("x"), "1").is_err());
    }

    #[test]
    fn unbalanced_finish_rejected() {
        let mut w = XmlWriter::new();
        w.start_element(&QName::new("a")).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn second_root_rejected() {
        let mut w = XmlWriter::new();
        w.start_element(&QName::new("a")).unwrap();
        w.end_element().unwrap();
        assert!(w.start_element(&QName::new("b")).is_err());
    }

    #[test]
    fn declaration_then_root() {
        let mut w = XmlWriter::new();
        w.declaration().unwrap();
        w.start_element(&QName::new("a")).unwrap();
        w.end_element().unwrap();
        assert_eq!(w.finish().unwrap(), "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
    }

    #[test]
    fn pretty_printing_indents_structure_not_text() {
        let mut w = XmlWriter::pretty("  ");
        w.start_element(&QName::new("a")).unwrap();
        w.start_element(&QName::new("b")).unwrap();
        w.text("t").unwrap();
        w.end_element().unwrap();
        w.end_element().unwrap();
        assert_eq!(w.finish().unwrap(), "<a>\n  <b>t</b>\n</a>\n");
    }

    #[test]
    fn writer_output_reparses() {
        let mut w = XmlWriter::new();
        let env = QName::with_ns("urn:env", "Envelope").with_prefix("env");
        w.start_element(&env).unwrap();
        w.attribute(&QName::new("version"), "1.0").unwrap();
        w.text_element(&QName::with_ns("urn:env", "Body"), "payload & more").unwrap();
        w.end_element().unwrap();
        let xml = w.finish().unwrap();
        let root = crate::tree::Element::parse(&xml).unwrap();
        assert_eq!(root.name().namespace(), Some("urn:env"));
        assert_eq!(root.children().len(), 1);
        assert_eq!(root.children()[0].text(), "payload & more");
    }
}
