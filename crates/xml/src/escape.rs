//! Escaping and unescaping of XML character data and attribute values.

use std::borrow::Cow;

use crate::error::{XmlError, XmlErrorKind};

/// Escape character data for use as element text.
///
/// Replaces `&`, `<` and `>` (`>` only strictly needs escaping in the
/// `]]>` sequence, but escaping it unconditionally is valid and simpler).
///
/// Returns a borrowed string when no escaping was necessary.
///
/// ```
/// assert_eq!(wsg_xml::escape::escape_text("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape_text(input: &str) -> Cow<'_, str> {
    escape_with(input, false)
}

/// Escape a string for use inside a double-quoted attribute value.
///
/// In addition to the text escapes, `"` becomes `&quot;` and tabs/newlines
/// become character references so they survive attribute-value
/// normalisation on re-parse.
pub fn escape_attr(input: &str) -> Cow<'_, str> {
    escape_with(input, true)
}

fn needs_escape(c: char, attr: bool) -> bool {
    match c {
        '&' | '<' | '>' => true,
        '"' | '\t' | '\n' | '\r' => attr,
        _ => false,
    }
}

fn escape_with(input: &str, attr: bool) -> Cow<'_, str> {
    if !input.chars().any(|c| needs_escape(c, attr)) {
        return Cow::Borrowed(input);
    }
    let mut out = String::with_capacity(input.len() + 16);
    escape_into(&mut out, input, attr);
    Cow::Owned(out)
}

/// Append the text-escaped form of `input` to `out`.
///
/// The zero-allocation counterpart of [`escape_text`] for streaming
/// serializers that own a reusable output buffer.
pub fn escape_text_into(out: &mut String, input: &str) {
    escape_into(out, input, false)
}

/// Append the attribute-escaped form of `input` to `out` (see
/// [`escape_attr`] for the escaping rules).
pub fn escape_attr_into(out: &mut String, input: &str) {
    escape_into(out, input, true)
}

fn escape_into(out: &mut String, input: &str, attr: bool) {
    let first = match input.char_indices().find(|&(_, c)| needs_escape(c, attr)) {
        Some((i, _)) => i,
        None => {
            out.push_str(input);
            return;
        }
    };
    out.push_str(&input[..first]);
    for c in input[first..].chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\t' if attr => out.push_str("&#9;"),
            '\n' if attr => out.push_str("&#10;"),
            '\r' if attr => out.push_str("&#13;"),
            other => out.push(other),
        }
    }
}

/// Resolve the five predefined entities and numeric character references in
/// `input`, returning the unescaped text.
///
/// # Errors
///
/// Returns [`XmlError`] with kind `UnknownEntity` for undefined entity
/// references and `Malformed` for unterminated or out-of-range character
/// references. `position` in the error is relative to `base_offset`.
pub fn unescape(input: &str, base_offset: usize) -> Result<Cow<'_, str>, XmlError> {
    let first = match input.find('&') {
        Some(i) => i,
        None => return Ok(Cow::Borrowed(input)),
    };
    let mut out = String::with_capacity(input.len());
    out.push_str(&input[..first]);
    let mut rest = &input[first..];
    let mut offset = base_offset + first;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::Malformed("unterminated entity reference".into()),
                offset + amp,
            )
        })?;
        let name = &after[..semi];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with('#') => {
                out.push(parse_char_ref(name, offset + amp)?);
            }
            _ => {
                return Err(XmlError::new(
                    XmlErrorKind::UnknownEntity(name.to_string()),
                    offset + amp,
                ))
            }
        }
        offset += amp + 1 + semi + 1;
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

fn parse_char_ref(name: &str, position: usize) -> Result<char, XmlError> {
    let digits = &name[1..];
    let value = if let Some(hex) = digits.strip_prefix('x').or_else(|| digits.strip_prefix('X')) {
        u32::from_str_radix(hex, 16)
    } else {
        digits.parse::<u32>()
    }
    .map_err(|_| {
        XmlError::new(
            XmlErrorKind::Malformed(format!("invalid character reference '&{name};'")),
            position,
        )
    })?;
    char::from_u32(value).filter(|c| is_xml_char(*c)).ok_or_else(|| {
        XmlError::new(
            XmlErrorKind::Malformed(format!("character reference out of range '&{name};'")),
            position,
        )
    })
}

/// Whether `c` is a character permitted by the XML 1.0 `Char` production.
pub fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

/// Whether `c` may start an XML name (`NameStartChar`, minus the rarely
/// used supplementary ranges kept for simplicity).
pub fn is_name_start(c: char) -> bool {
    c == ':' || c == '_' || c.is_ascii_alphabetic() || matches!(c,
        '\u{C0}'..='\u{D6}' | '\u{D8}'..='\u{F6}' | '\u{F8}'..='\u{2FF}'
        | '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}' | '\u{200C}'..='\u{200D}'
        | '\u{2070}'..='\u{218F}' | '\u{2C00}'..='\u{2FEF}' | '\u{3001}'..='\u{D7FF}'
        | '\u{F900}'..='\u{FDCF}' | '\u{FDF0}'..='\u{FFFD}' | '\u{10000}'..='\u{EFFFF}')
}

/// Whether `c` may continue an XML name (`NameChar`).
pub fn is_name_char(c: char) -> bool {
    is_name_start(c)
        || c == '-'
        || c == '.'
        || c.is_ascii_digit()
        || matches!(c, '\u{B7}' | '\u{300}'..='\u{36F}' | '\u{203F}'..='\u{2040}')
}

/// Validate that `lexical` is a namespace-well-formed qualified name: at
/// most one colon, and the prefix / local parts each a legal colon-free
/// name. Plain [`validate_name`] treats `:` as an ordinary name character
/// (per XML 1.0), so it accepts `wsa:0` — whose local part the writer
/// then refuses to serialise. Parsers that resolve prefixes must use this
/// instead (regression: fuzz/corpus/regressions/xml/79758a29844b826c).
pub fn validate_qname(lexical: &str) -> Result<(), XmlError> {
    let invalid = || XmlError::new(XmlErrorKind::InvalidName(lexical.to_string()), 0);
    let (prefix, local) = match lexical.split_once(':') {
        Some((prefix, local)) => (Some(prefix), local),
        None => (None, lexical),
    };
    if local.contains(':') {
        return Err(invalid());
    }
    if let Some(prefix) = prefix {
        validate_name(prefix).map_err(|_| invalid())?;
    }
    validate_name(local).map_err(|_| invalid())
}

/// Validate that `name` is a legal XML name.
pub fn validate_name(name: &str) -> Result<(), XmlError> {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if is_name_start(c) => {}
        _ => {
            return Err(XmlError::new(XmlErrorKind::InvalidName(name.to_string()), 0));
        }
    }
    if chars.all(is_name_char) {
        Ok(())
    } else {
        Err(XmlError::new(XmlErrorKind::InvalidName(name.to_string()), 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_borrows_when_clean() {
        assert!(matches!(escape_text("hello"), Cow::Borrowed(_)));
    }

    #[test]
    fn text_escaping_replaces_specials() {
        assert_eq!(escape_text("<a&b>"), "&lt;a&amp;b&gt;");
    }

    #[test]
    fn into_variants_match_cow_variants() {
        for input in ["plain", "<a&b>", "a\"b\nc", ""] {
            let mut t = String::from("prefix:");
            escape_text_into(&mut t, input);
            assert_eq!(t, format!("prefix:{}", escape_text(input)));
            let mut a = String::from("prefix:");
            escape_attr_into(&mut a, input);
            assert_eq!(a, format!("prefix:{}", escape_attr(input)));
        }
    }

    #[test]
    fn attr_escaping_handles_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b\nc"), "a&quot;b&#10;c");
    }

    #[test]
    fn unescape_predefined_entities() {
        assert_eq!(unescape("&lt;&gt;&amp;&quot;&apos;", 0).unwrap(), "<>&\"'");
    }

    #[test]
    fn unescape_char_refs_decimal_and_hex() {
        assert_eq!(unescape("&#65;&#x42;", 0).unwrap(), "AB");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        let err = unescape("&nbsp;", 0).unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnknownEntity(e) if e == "nbsp"));
    }

    #[test]
    fn unescape_rejects_unterminated() {
        assert!(unescape("&amp", 0).is_err());
    }

    #[test]
    fn unescape_rejects_surrogate_char_ref() {
        assert!(unescape("&#xD800;", 0).is_err());
    }

    #[test]
    fn roundtrip_text() {
        let original = "price < 100 && symbol == \"ACME\"";
        let escaped = escape_text(original);
        assert_eq!(unescape(&escaped, 0).unwrap(), original);
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("env:Envelope").is_ok());
        assert!(validate_name("_x").is_ok());
        assert!(validate_name("9abc").is_err());
        assert!(validate_name("").is_err());
        assert!(validate_name("a b").is_err());
    }
}
