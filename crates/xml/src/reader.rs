//! A namespace-aware pull parser.

use wsg_net::cov;

use crate::error::{XmlError, XmlErrorKind};
use crate::escape::{is_name_char, is_name_start, unescape, validate_qname};
use crate::event::{Attribute, XmlEvent};
use crate::name::{NamespaceScope, QName};

/// Maximum element nesting depth accepted by the reader.
pub const MAX_DEPTH: usize = 512;

/// A pull parser over an in-memory document.
///
/// Produces a stream of [`XmlEvent`]s with namespaces resolved. Rejects
/// DTDs and external entities by construction, and enforces a maximum
/// element depth of [`MAX_DEPTH`] (the secure defaults for middleware that
/// parses messages off the wire — unbounded depth lets a hostile document
/// overflow the stack of tree-building consumers).
///
/// ```
/// use wsg_xml::{XmlReader, XmlEvent};
///
/// # fn main() -> Result<(), wsg_xml::XmlError> {
/// let mut reader = XmlReader::new("<a xmlns='urn:x'><b>hi</b></a>");
/// let first = reader.next_event()?;
/// assert!(first.is_start_of(Some("urn:x"), "a"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct XmlReader<'a> {
    input: &'a str,
    pos: usize,
    scope: NamespaceScope,
    // Stack of open element lexical names (for close-tag matching) plus the
    // resolved QName to emit on EndElement.
    open: Vec<(String, QName)>,
    // A pending synthetic EndElement for a self-closing tag.
    pending_end: Option<QName>,
    seen_root: bool,
    finished: bool,
    // Shallowest scope depth a namespace resolution consulted since the
    // last `reset_binding_watermark` (`usize::MAX` = none). Depth-0
    // bindings (the implicit `xml` prefix) never count: they exist in
    // every document, so relying on them keeps a slice self-contained.
    binding_watermark: usize,
}

impl<'a> XmlReader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a str) -> Self {
        XmlReader {
            input,
            pos: 0,
            scope: NamespaceScope::new(),
            open: Vec::new(),
            pending_end: None,
            seen_root: false,
            finished: false,
            binding_watermark: usize::MAX,
        }
    }

    /// Byte offset of the parse cursor.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Depth of the current namespace scope (one level per open element).
    pub fn scope_depth(&self) -> usize {
        self.scope.depth()
    }

    /// Start tracking which namespace bindings the following events consult.
    pub fn reset_binding_watermark(&mut self) {
        self.binding_watermark = usize::MAX;
    }

    /// Shallowest scope depth a namespace resolution consulted since the
    /// last [`reset_binding_watermark`](Self::reset_binding_watermark)
    /// (`usize::MAX` when none, or only the implicit `xml` binding, was).
    /// A subtree whose watermark stays **above** the scope depth at its
    /// start resolved every prefix from its own declarations — its byte
    /// span is a namespace-self-contained document on its own.
    pub fn binding_watermark(&self) -> usize {
        self.binding_watermark
    }

    fn note_binding_depth(&mut self, depth: usize) {
        if depth > 0 {
            self.binding_watermark = self.binding_watermark.min(depth);
        }
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Pull the next event.
    ///
    /// # Errors
    ///
    /// Returns an [`XmlError`] on malformed input; the reader should not be
    /// used further after an error.
    pub fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        if let Some(name) = self.pending_end.take() {
            cov!();
            self.open.pop();
            self.scope.pop_scope();
            return Ok(XmlEvent::EndElement { name });
        }
        if self.finished {
            cov!();
            return Ok(XmlEvent::Eof);
        }
        if self.pos >= self.input.len() {
            cov!();
            return self.at_eof();
        }

        let rest = &self.input[self.pos..];
        if rest.starts_with('<') {
            cov!();
            self.parse_markup()
        } else {
            cov!();
            self.parse_text()
        }
    }

    /// Iterate events until the matching end of the element that was just
    /// started, collecting the concatenated text content and discarding
    /// markup. Useful for simple leaf elements.
    pub fn read_text_content(&mut self) -> Result<String, XmlError> {
        let target_depth = self.open.len();
        let mut out = String::new();
        loop {
            match self.next_event()? {
                XmlEvent::Text(t) => out.push_str(&t),
                XmlEvent::CData(t) => out.push_str(&t),
                XmlEvent::EndElement { .. } if self.open.len() < target_depth => return Ok(out),
                XmlEvent::Eof => {
                    return Err(self.err(XmlErrorKind::UnexpectedEof));
                }
                _ => {}
            }
        }
    }

    fn at_eof(&mut self) -> Result<XmlEvent, XmlError> {
        if let Some((lexical, _)) = self.open.last() {
            cov!();
            return Err(XmlError::new(
                XmlErrorKind::Malformed(format!("unclosed element <{lexical}>")),
                self.pos,
            ));
        }
        if !self.seen_root {
            cov!();
            return Err(self.err(XmlErrorKind::UnexpectedEof));
        }
        self.finished = true;
        Ok(XmlEvent::Eof)
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.pos)
    }

    fn parse_text(&mut self) -> Result<XmlEvent, XmlError> {
        let start = self.pos;
        let rest = &self.input[start..];
        let end = rest.find('<').map(|i| start + i).unwrap_or(self.input.len());
        let raw = &self.input[start..end];
        self.pos = end;
        if self.open.is_empty() {
            // Only whitespace is allowed outside the root element.
            if raw.trim().is_empty() {
                cov!();
                return if self.pos >= self.input.len() {
                    self.at_eof()
                } else {
                    self.next_event()
                };
            }
            cov!();
            return Err(XmlError::new(
                XmlErrorKind::Malformed("character data outside root element".into()),
                start,
            ));
        }
        if raw.contains("]]>") {
            cov!();
            return Err(XmlError::new(
                XmlErrorKind::Malformed("']]>' not allowed in character data".into()),
                start,
            ));
        }
        cov!();
        let text = unescape(raw, start)?;
        Ok(XmlEvent::Text(text.into_owned()))
    }

    fn parse_markup(&mut self) -> Result<XmlEvent, XmlError> {
        let rest = &self.input[self.pos..];
        if let Some(r) = rest.strip_prefix("<?") {
            cov!();
            return self.parse_pi(r);
        }
        if rest.starts_with("<!--") {
            cov!();
            return self.parse_comment();
        }
        if rest.starts_with("<![CDATA[") {
            cov!();
            return self.parse_cdata();
        }
        if rest.starts_with("<!") {
            cov!();
            return Err(self.err(XmlErrorKind::Unsupported(
                "DTD / declaration markup ('<!') is not supported".into(),
            )));
        }
        if rest.starts_with("</") {
            cov!();
            return self.parse_end_tag();
        }
        cov!();
        self.parse_start_tag()
    }

    fn parse_pi(&mut self, after: &str) -> Result<XmlEvent, XmlError> {
        let close = after
            .find("?>")
            .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        let content = &after[..close];
        let consumed = 2 + close + 2;
        let (target, data) = match content.find(|c: char| c.is_whitespace()) {
            Some(i) => (&content[..i], content[i..].trim_start()),
            None => (content, ""),
        };
        let start_pos = self.pos;
        self.pos += consumed;
        if target.eq_ignore_ascii_case("xml") {
            if start_pos != 0 {
                cov!();
                return Err(XmlError::new(
                    XmlErrorKind::Malformed("xml declaration not at document start".into()),
                    start_pos,
                ));
            }
            cov!();
            let version = pseudo_attr(data, "version").unwrap_or_else(|| "1.0".to_string());
            let encoding = pseudo_attr(data, "encoding");
            return Ok(XmlEvent::Declaration { version, encoding });
        }
        Ok(XmlEvent::ProcessingInstruction {
            target: target.to_string(),
            data: data.to_string(),
        })
    }

    fn parse_comment(&mut self) -> Result<XmlEvent, XmlError> {
        let body = &self.input[self.pos + 4..];
        let close = body
            .find("-->")
            .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        let text = &body[..close];
        if text.contains("--") {
            cov!();
            return Err(self.err(XmlErrorKind::Malformed("'--' inside comment".into())));
        }
        self.pos += 4 + close + 3;
        Ok(XmlEvent::Comment(text.to_string()))
    }

    fn parse_cdata(&mut self) -> Result<XmlEvent, XmlError> {
        if self.open.is_empty() {
            cov!();
            return Err(self.err(XmlErrorKind::Malformed(
                "CDATA outside root element".into(),
            )));
        }
        cov!();
        let body = &self.input[self.pos + 9..];
        let close = body
            .find("]]>")
            .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        let text = body[..close].to_string();
        self.pos += 9 + close + 3;
        Ok(XmlEvent::CData(text))
    }

    fn parse_end_tag(&mut self) -> Result<XmlEvent, XmlError> {
        let tag_start = self.pos;
        let body = &self.input[self.pos + 2..];
        let close = body
            .find('>')
            .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        let lexical = body[..close].trim_end();
        self.pos += 2 + close + 1;
        let (open_lexical, qname) = self.open.pop().ok_or_else(|| {
            cov!();
            XmlError::new(
                XmlErrorKind::Malformed(format!("close tag </{lexical}> with no open element")),
                tag_start,
            )
        })?;
        if open_lexical != lexical {
            cov!();
            return Err(XmlError::new(
                XmlErrorKind::MismatchedTag { expected: open_lexical, found: lexical.to_string() },
                tag_start,
            ));
        }
        cov!();
        self.scope.pop_scope();
        Ok(XmlEvent::EndElement { name: qname })
    }

    fn parse_start_tag(&mut self) -> Result<XmlEvent, XmlError> {
        let tag_start = self.pos;
        self.pos += 1; // consume '<'
        let lexical = self.read_name()?;
        if validate_qname(&lexical).is_err() {
            cov!();
            return Err(XmlError::new(XmlErrorKind::InvalidName(lexical), tag_start));
        }
        let mut raw_attrs: Vec<(String, String)> = Vec::new();
        let empty;
        loop {
            self.skip_whitespace();
            let rest = &self.input[self.pos..];
            if rest.starts_with("/>") {
                cov!();
                self.pos += 2;
                empty = true;
                break;
            }
            if rest.starts_with('>') {
                cov!();
                self.pos += 1;
                empty = false;
                break;
            }
            if rest.is_empty() {
                cov!();
                return Err(self.err(XmlErrorKind::UnexpectedEof));
            }
            let (name, value) = self.read_attribute()?;
            if raw_attrs.iter().any(|(n, _)| *n == name) {
                cov!();
                return Err(XmlError::new(XmlErrorKind::DuplicateAttribute(name), tag_start));
            }
            cov!();
            raw_attrs.push((name, value));
        }

        if self.open.is_empty() {
            if self.seen_root {
                cov!();
                return Err(XmlError::new(
                    XmlErrorKind::Malformed("multiple root elements".into()),
                    tag_start,
                ));
            }
            self.seen_root = true;
        }
        if self.open.len() >= MAX_DEPTH {
            cov!();
            return Err(XmlError::new(
                XmlErrorKind::Malformed(format!("element depth exceeds {MAX_DEPTH}")),
                tag_start,
            ));
        }

        // Namespace processing: declarations first, then resolution.
        self.scope.push_scope();
        for (name, value) in &raw_attrs {
            if name == "xmlns" {
                cov!();
                self.scope.declare("", value);
            } else if let Some(prefix) = name.strip_prefix("xmlns:") {
                cov!();
                if value.is_empty() {
                    cov!();
                    return Err(XmlError::new(
                        XmlErrorKind::Malformed(format!(
                            "cannot bind prefix '{prefix}' to empty namespace"
                        )),
                        tag_start,
                    ));
                }
                self.scope.declare(prefix, value);
            }
        }

        let name = self.resolve_element(&lexical, tag_start)?;
        let mut attributes = Vec::with_capacity(raw_attrs.len());
        for (raw_name, value) in raw_attrs {
            if raw_name == "xmlns" || raw_name.starts_with("xmlns:") {
                continue;
            }
            let (prefix, local) = QName::split_lexical(&raw_name);
            let qname = match prefix {
                // Per the namespaces spec, unprefixed attributes are in no
                // namespace (the default namespace does not apply).
                None => QName::new(local),
                Some(p) => {
                    let (depth, uri) = self.scope.resolve_with_depth(p).ok_or_else(|| {
                        cov!();
                        XmlError::new(XmlErrorKind::UndeclaredPrefix(p.to_string()), tag_start)
                    })?;
                    let name = QName::with_ns(uri, local).with_prefix(p);
                    self.note_binding_depth(depth);
                    name
                }
            };
            attributes.push(Attribute { name: qname, value });
        }

        if empty {
            cov!();
            self.pending_end = Some(name.clone());
            self.open.push((lexical, name.clone()));
        } else {
            cov!();
            self.open.push((lexical, name.clone()));
        }
        Ok(XmlEvent::StartElement { name, attributes, empty })
    }

    fn resolve_element(&mut self, lexical: &str, at: usize) -> Result<QName, XmlError> {
        let (prefix, local) = QName::split_lexical(lexical);
        match prefix {
            Some(p) => {
                let (depth, uri) = self
                    .scope
                    .resolve_with_depth(p)
                    .ok_or_else(|| XmlError::new(XmlErrorKind::UndeclaredPrefix(p.to_string()), at))?;
                let name = QName::with_ns(uri, local).with_prefix(p);
                self.note_binding_depth(depth);
                Ok(name)
            }
            None => match self.scope.resolve_with_depth("") {
                Some((depth, uri)) if !uri.is_empty() => {
                    let name = QName::with_ns(uri, local);
                    self.note_binding_depth(depth);
                    Ok(name)
                }
                _ => Ok(QName::new(local)),
            },
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let rest = &self.input[self.pos..];
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, c)) if is_name_start(c) => {}
            Some((_, c)) => {
                cov!();
                return Err(self.err(XmlErrorKind::InvalidName(c.to_string())));
            }
            None => {
                cov!();
                return Err(self.err(XmlErrorKind::UnexpectedEof));
            }
        }
        let end = chars
            .find(|&(_, c)| !is_name_char(c))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let name = &rest[..end];
        self.pos += end;
        Ok(name.to_string())
    }

    fn read_attribute(&mut self) -> Result<(String, String), XmlError> {
        let name = self.read_name()?;
        if validate_qname(&name).is_err() {
            cov!();
            return Err(self.err(XmlErrorKind::InvalidName(name)));
        }
        self.skip_whitespace();
        if !self.input[self.pos..].starts_with('=') {
            cov!();
            return Err(self.err(XmlErrorKind::Malformed(format!(
                "expected '=' after attribute '{name}'"
            ))));
        }
        self.pos += 1;
        self.skip_whitespace();
        let rest = &self.input[self.pos..];
        let quote = match rest.chars().next() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => {
                cov!();
                return Err(self.err(XmlErrorKind::Malformed(format!(
                    "attribute value must be quoted, found '{c}'"
                ))));
            }
            None => {
                cov!();
                return Err(self.err(XmlErrorKind::UnexpectedEof));
            }
        };
        let body = &rest[1..];
        let close = body
            .find(quote)
            .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        let raw = &body[..close];
        if raw.contains('<') {
            cov!();
            return Err(self.err(XmlErrorKind::Malformed(
                "'<' not allowed in attribute value".into(),
            )));
        }
        let value_start = self.pos + 1;
        self.pos += 1 + close + 1;
        let value = unescape(raw, value_start)?;
        // Attribute-value normalisation: whitespace characters become
        // spaces. Almost no value needs it, so only rebuild when one does.
        let normalised: String = if value.contains(['\t', '\n', '\r']) {
            value
                .chars()
                .map(|c| if matches!(c, '\t' | '\n' | '\r') { ' ' } else { c })
                .collect()
        } else {
            value.into_owned()
        };
        Ok((name, normalised))
    }

    fn skip_whitespace(&mut self) {
        let rest = &self.input[self.pos..];
        let skip = rest.len() - rest.trim_start().len();
        self.pos += skip;
    }
}

fn pseudo_attr(data: &str, name: &str) -> Option<String> {
    let idx = data.find(name)?;
    let rest = data[idx + name.len()..].trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let quote = rest.chars().next()?;
    if quote != '"' && quote != '\'' {
        return None;
    }
    let body = &rest[1..];
    let end = body.find(quote)?;
    Some(body[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut reader = XmlReader::new(input);
        let mut out = Vec::new();
        loop {
            let ev = reader.next_event().expect("parse error");
            let eof = ev == XmlEvent::Eof;
            out.push(ev);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn simple_document() {
        let evs = events("<a><b>text</b></a>");
        assert_eq!(evs.len(), 6);
        assert!(evs[0].is_start_of(None, "a"));
        assert!(evs[1].is_start_of(None, "b"));
        assert_eq!(evs[2], XmlEvent::Text("text".into()));
        assert!(evs[3].is_end_of(None, "b"));
        assert!(evs[4].is_end_of(None, "a"));
    }

    #[test]
    fn self_closing_emits_end() {
        let evs = events("<a/>");
        assert!(matches!(&evs[0], XmlEvent::StartElement { empty: true, .. }));
        assert!(evs[1].is_end_of(None, "a"));
    }

    #[test]
    fn declaration_parsed() {
        let evs = events("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
        assert_eq!(
            evs[0],
            XmlEvent::Declaration { version: "1.0".into(), encoding: Some("UTF-8".into()) }
        );
    }

    #[test]
    fn default_namespace_applies_to_elements_not_attrs() {
        let evs = events("<a xmlns=\"urn:x\" id=\"1\"><b/></a>");
        match &evs[0] {
            XmlEvent::StartElement { name, attributes, .. } => {
                assert_eq!(name.namespace(), Some("urn:x"));
                assert_eq!(attributes[0].name.namespace(), None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(evs[1].is_start_of(Some("urn:x"), "b"));
    }

    #[test]
    fn prefixed_namespaces_resolve_and_shadow() {
        let evs = events("<p:a xmlns:p=\"urn:one\"><p:a xmlns:p=\"urn:two\"/></p:a>");
        assert!(evs[0].is_start_of(Some("urn:one"), "a"));
        assert!(evs[1].is_start_of(Some("urn:two"), "a"));
        assert!(evs[2].is_end_of(Some("urn:two"), "a"));
        assert!(evs[3].is_end_of(Some("urn:one"), "a"));
    }

    #[test]
    fn undeclared_prefix_rejected() {
        let err = XmlReader::new("<p:a/>").next_event().unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UndeclaredPrefix(p) if p == "p"));
    }

    #[test]
    fn mismatched_close_rejected() {
        let mut r = XmlReader::new("<a><b></a></b>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let err = r.next_event().unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element_rejected() {
        let mut r = XmlReader::new("<a>");
        r.next_event().unwrap();
        assert!(r.next_event().is_err());
    }

    #[test]
    fn multiple_roots_rejected() {
        let mut r = XmlReader::new("<a/><b/>");
        r.next_event().unwrap();
        r.next_event().unwrap(); // synthetic end of <a/>
        assert!(r.next_event().is_err());
    }

    #[test]
    fn text_outside_root_rejected() {
        let mut r = XmlReader::new("hello<a/>");
        assert!(r.next_event().is_err());
    }

    #[test]
    fn whitespace_outside_root_ok() {
        let evs = events("  <a/>  ");
        assert!(evs[0].is_start_of(None, "a"));
        assert_eq!(evs.last(), Some(&XmlEvent::Eof));
    }

    #[test]
    fn cdata_passes_through_verbatim() {
        let evs = events("<a><![CDATA[<raw> & stuff]]></a>");
        assert_eq!(evs[1], XmlEvent::CData("<raw> & stuff".into()));
    }

    #[test]
    fn comments_and_pis() {
        let evs = events("<!-- hi --><a><?pi some data?></a>");
        assert_eq!(evs[0], XmlEvent::Comment(" hi ".into()));
        assert_eq!(
            evs[2],
            XmlEvent::ProcessingInstruction { target: "pi".into(), data: "some data".into() }
        );
    }

    #[test]
    fn dtd_rejected() {
        let mut r = XmlReader::new("<!DOCTYPE a><a/>");
        let err = r.next_event().unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::Unsupported(_)));
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let evs = events("<a x=\"1 &lt; 2\">&amp;&#65;</a>");
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "1 < 2");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[1], XmlEvent::Text("&A".into()));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut r = XmlReader::new("<a x=\"1\" x=\"2\"/>");
        assert!(matches!(
            r.next_event().unwrap_err().kind(),
            XmlErrorKind::DuplicateAttribute(_)
        ));
    }

    #[test]
    fn attribute_value_newline_normalised() {
        let evs = events("<a x=\"l1\nl2\"/>");
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "l1 l2");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_text_content_concatenates() {
        let mut r = XmlReader::new("<a>x<b>skip</b>y<![CDATA[z]]></a>");
        r.next_event().unwrap();
        assert_eq!(r.read_text_content().unwrap(), "xskipyz");
    }

    #[test]
    fn pathological_depth_rejected_not_overflowed() {
        let deep = "<a>".repeat(100_000);
        let mut reader = XmlReader::new(&deep);
        let result = std::iter::from_fn(|| match reader.next_event() {
            Ok(XmlEvent::Eof) => None,
            Ok(ev) => Some(Ok(ev)),
            Err(e) => Some(Err(e)),
        })
        .find_map(|r| r.err());
        assert!(result.is_some(), "depth limit must trigger an error");
        // And the tree builder must therefore be safe too.
        assert!(crate::tree::Element::parse(&deep).is_err());
    }

    #[test]
    fn eof_is_idempotent() {
        let mut r = XmlReader::new("<a/>");
        while r.next_event().unwrap() != XmlEvent::Eof {}
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
    }
}
