//! Pull-parser events.

use crate::name::QName;

/// One attribute on a start tag, with its name fully namespace-resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Resolved attribute name. Unprefixed attributes have no namespace.
    pub name: QName,
    /// Unescaped attribute value.
    pub value: String,
}

/// An event produced by [`crate::XmlReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<?xml version="1.0" ...?>` prologue.
    Declaration {
        /// Version string, normally `1.0`.
        version: String,
        /// Declared encoding, if present.
        encoding: Option<String>,
    },
    /// Start of an element; `empty` is true for `<a/>` (an `EndElement`
    /// event is still emitted right after, so nesting is uniform).
    StartElement {
        /// Resolved element name.
        name: QName,
        /// Attributes in document order (namespace declarations excluded).
        attributes: Vec<Attribute>,
        /// Whether this was a self-closing tag.
        empty: bool,
    },
    /// End of an element.
    EndElement {
        /// Resolved element name.
        name: QName,
    },
    /// Character data (entities already resolved). Adjacent text/CDATA are
    /// *not* merged; each run is its own event.
    Text(String),
    /// A `<![CDATA[...]]>` section, verbatim.
    CData(String),
    /// A comment, without the delimiters.
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// Raw PI data.
        data: String,
    },
    /// End of the document.
    Eof,
}

impl XmlEvent {
    /// Convenience: is this a start of the element with the given resolved
    /// namespace + local name?
    pub fn is_start_of(&self, ns: Option<&str>, local: &str) -> bool {
        matches!(self, XmlEvent::StartElement { name, .. } if name.matches(ns, local))
    }

    /// Convenience: is this an end of the element with the given resolved
    /// namespace + local name?
    pub fn is_end_of(&self, ns: Option<&str>, local: &str) -> bool {
        matches!(self, XmlEvent::EndElement { name } if name.matches(ns, local))
    }
}
