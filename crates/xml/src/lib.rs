//! # wsg-xml — minimal XML 1.0 infoset
//!
//! A small, dependency-free XML library providing exactly what a SOAP 1.2
//! processing stack needs: a streaming [`writer::XmlWriter`], a pull
//! [`reader::XmlReader`], namespace-aware qualified names ([`name::QName`])
//! and an in-memory tree model ([`tree::Element`]).
//!
//! The WS-Gossip paper layers gossip on a SOAP/WS-* middleware stack. No
//! SOAP implementation exists in the Rust ecosystem, so this crate is the
//! from-scratch substrate: it is deliberately *not* a full XML 1.0
//! implementation (no DTDs, no external entities — which is also the secure
//! default for a network-facing middleware), but it is a faithful infoset
//! for the document shapes that WS-* messages use: elements, attributes,
//! namespaces, character data, CDATA, comments and processing instructions.
//!
//! ## Example
//!
//! ```
//! use wsg_xml::tree::Element;
//!
//! # fn main() -> Result<(), wsg_xml::XmlError> {
//! let mut root = Element::new("Envelope")
//!     .with_namespace("env", "http://www.w3.org/2003/05/soap-envelope");
//! root.push_child(Element::new("Body"));
//! let text = root.to_xml_string();
//! let parsed = Element::parse(&text)?;
//! assert_eq!(parsed.local_name(), "Envelope");
//! # Ok(())
//! # }
//! ```

pub mod escape;
pub mod event;
pub mod name;
pub mod reader;
pub mod tree;
pub mod writer;

mod error;

pub use error::XmlError;
pub use event::XmlEvent;
pub use name::QName;
pub use reader::XmlReader;
pub use tree::Element;
pub use writer::XmlWriter;

/// The XML namespace URI bound to the reserved `xml` prefix.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// The namespace URI bound to the reserved `xmlns` prefix.
pub const XMLNS_NS: &str = "http://www.w3.org/2000/xmlns/";
