//! Hierarchical topics and wildcard filters (WS-Topics-flavoured).
//!
//! The paper positions WS-Gossip inside the OASIS WS-Notification
//! ecosystem (§1, citing Niblett & Graham), whose *topics* are
//! `/`-separated hierarchies with wildcard subscriptions. This module
//! implements that model:
//!
//! * a concrete topic is a path: `market/nyse/ACME`;
//! * a filter may use `*` for exactly one segment (`market/*/ACME`) and a
//!   trailing `**` for any remaining depth (`market/**`);
//! * an exact path is also a filter (matching only itself), so plain
//!   string topics keep working unchanged.

use std::fmt;

use crate::error::CoordError;

/// A parsed topic filter.
///
/// ```
/// use wsg_coord::topics::TopicFilter;
///
/// let filter: TopicFilter = "market/*/trades".parse().unwrap();
/// assert!(filter.matches("market/nyse/trades"));
/// assert!(!filter.matches("market/nyse/quotes"));
/// assert!(!filter.matches("market/trades"));
///
/// let deep: TopicFilter = "market/**".parse().unwrap();
/// assert!(deep.matches("market/nyse/ACME"));
/// assert!(deep.matches("market"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TopicFilter {
    segments: Vec<Segment>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Segment {
    Literal(String),
    AnyOne,
    AnyDepth, // only valid as the final segment
}

impl TopicFilter {
    /// Whether this filter contains any wildcard.
    pub fn is_pattern(&self) -> bool {
        self.segments
            .iter()
            .any(|s| !matches!(s, Segment::Literal(_)))
    }

    /// Whether `topic` (a concrete path) matches this filter.
    pub fn matches(&self, topic: &str) -> bool {
        let parts: Vec<&str> = topic.split('/').collect();
        self.matches_parts(&parts)
    }

    fn matches_parts(&self, parts: &[&str]) -> bool {
        let mut index = 0;
        for segment in &self.segments {
            match segment {
                Segment::AnyDepth => return true, // consumes the rest (even empty)
                Segment::AnyOne => {
                    if index >= parts.len() {
                        return false;
                    }
                    index += 1;
                }
                Segment::Literal(lit) => {
                    if index >= parts.len() || parts[index] != lit {
                        return false;
                    }
                    index += 1;
                }
            }
        }
        index == parts.len()
    }
}

impl fmt::Display for TopicFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self
            .segments
            .iter()
            .map(|s| match s {
                Segment::Literal(l) => l.clone(),
                Segment::AnyOne => "*".to_string(),
                Segment::AnyDepth => "**".to_string(),
            })
            .collect();
        f.write_str(&rendered.join("/"))
    }
}

impl std::str::FromStr for TopicFilter {
    type Err = CoordError;

    fn from_str(input: &str) -> Result<Self, Self::Err> {
        if input.is_empty() {
            return Err(CoordError::Codec("empty topic filter".into()));
        }
        let raw: Vec<&str> = input.split('/').collect();
        let mut segments = Vec::with_capacity(raw.len());
        for (index, part) in raw.iter().enumerate() {
            let segment = match *part {
                "" => return Err(CoordError::Codec(format!("empty segment in '{input}'"))),
                "*" => Segment::AnyOne,
                "**" => {
                    if index != raw.len() - 1 {
                        return Err(CoordError::Codec(format!(
                            "'**' must be the final segment in '{input}'"
                        )));
                    }
                    // `a/**` should also match `a` itself: handled in
                    // matches_parts by early return. But `a/**` with parts
                    // ["a"]: literal consumes "a", AnyDepth returns true.
                    Segment::AnyDepth
                }
                literal => {
                    if literal.contains('*') {
                        return Err(CoordError::Codec(format!(
                            "wildcard must be a whole segment in '{input}'"
                        )));
                    }
                    Segment::Literal(literal.to_string())
                }
            };
            segments.push(segment);
        }
        Ok(TopicFilter { segments })
    }
}

/// Whether a subscription key (exact path or wildcard filter) covers the
/// concrete `topic`; unparseable keys fall back to literal equality.
pub fn covers(key: &str, topic: &str) -> bool {
    if key == topic {
        return true;
    }
    key.parse::<TopicFilter>()
        .map(|filter| filter.matches(topic))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(s: &str) -> TopicFilter {
        s.parse().expect("valid filter")
    }

    #[test]
    fn exact_paths_match_only_themselves() {
        let f = filter("market/nyse/ACME");
        assert!(!f.is_pattern());
        assert!(f.matches("market/nyse/ACME"));
        assert!(!f.matches("market/nyse"));
        assert!(!f.matches("market/nyse/ACME/trades"));
        assert!(!f.matches("market/nyse/OTHR"));
    }

    #[test]
    fn single_level_wildcard() {
        let f = filter("market/*/trades");
        assert!(f.is_pattern());
        assert!(f.matches("market/nyse/trades"));
        assert!(f.matches("market/lse/trades"));
        assert!(!f.matches("market/trades"));
        assert!(!f.matches("market/nyse/lse/trades"));
    }

    #[test]
    fn trailing_multi_level_wildcard() {
        let f = filter("market/**");
        assert!(f.matches("market"));
        assert!(f.matches("market/nyse"));
        assert!(f.matches("market/nyse/ACME/trades"));
        assert!(!f.matches("weather"));
        assert!(!f.matches("marketplace"));
    }

    #[test]
    fn bare_double_star_matches_everything() {
        let f = filter("**");
        assert!(f.matches("anything"));
        assert!(f.matches("a/b/c"));
    }

    #[test]
    fn invalid_filters_rejected() {
        for bad in ["", "a//b", "/a", "a/", "a/**/b", "pre*fix", "**extra"] {
            assert!(bad.parse::<TopicFilter>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_roundtrips() {
        for input in ["a", "a/b/c", "a/*/c", "a/**", "*", "**"] {
            assert_eq!(filter(input).to_string(), input);
        }
    }

    #[test]
    fn covers_handles_exact_and_pattern_keys() {
        assert!(super::covers("a/b", "a/b"));
        assert!(super::covers("a/*", "a/b"));
        assert!(!super::covers("a/*", "a/b/c"));
        // Unparseable keys only match themselves.
        assert!(super::covers("bad//key", "bad//key"));
        assert!(!super::covers("bad//key", "other"));
    }

    #[test]
    fn star_alone_is_one_segment() {
        let f = filter("*");
        assert!(f.matches("market"));
        assert!(!f.matches("market/nyse"));
    }
}
