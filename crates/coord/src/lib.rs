//! # wsg-coord — WS-Coordination for gossip interactions
//!
//! WS-Gossip is "built on the standard WS-Coordination in order to provide
//! gossip-based communication seamlessly to any regular service" (paper
//! §3). This crate implements the WS-Coordination 1.1 machinery the paper
//! relies on, specialised with a *gossip coordination type*:
//!
//! * [`CoordinationContext`] — the context created by **Activation** and
//!   propagated in a SOAP header with each disseminated message;
//! * [`ActivationService`] — `CreateCoordinationContext`: starts a gossip
//!   interaction and fixes its protocol parameters (`f`, `r`, style);
//! * [`RegistrationService`] — `Register`: a node that received a gossiped
//!   message and wants to take part registers and receives its gossip
//!   targets for the current round;
//! * [`SubscriptionList`] — the coordinator-side list of subscribers the
//!   paper's Coordinator role manages.
//!
//! Everything serialises to/from faithful SOAP header and body elements so
//! the middleware exchanges real envelopes.
//!
//! ## Example
//!
//! ```
//! use wsg_coord::{ActivationService, GossipProtocol, GossipPolicy};
//! use wsg_net::SimTime;
//!
//! let mut activation = ActivationService::new("http://coord/activation", "http://coord/registration");
//! let ctx = activation.create_context(
//!     GossipProtocol::Push,
//!     GossipPolicy::default(),
//!     SimTime::ZERO,
//! );
//! assert_eq!(ctx.coordination_type(), GossipProtocol::Push.coordination_type());
//! let header = ctx.to_header();
//! let parsed = wsg_coord::CoordinationContext::from_header(&header).unwrap();
//! assert_eq!(parsed.identifier(), ctx.identifier());
//! ```

pub mod activation;
pub mod context;
pub mod obs;
pub mod registration;
pub mod subscription;
pub mod sync;
pub mod topics;

mod error;

pub use activation::{ActivationService, ActivationStats};
pub use context::{CoordinationContext, GossipPolicy, GossipProtocol};
pub use error::CoordError;
pub use registration::{GossipGrant, RegistrationService, RegistrationStats};
pub use subscription::{SubscriptionList, SubscriptionStats};
pub use sync::CoordinatorSync;
pub use topics::TopicFilter;

/// WS-Coordination 1.1 namespace.
pub const WSCOOR_NS: &str = "http://docs.oasis-open.org/ws-tx/wscoor/2006/06";

/// The WS-Gossip extension namespace.
pub const WSGOSSIP_NS: &str = "urn:ws-gossip:2008";
