//! The coordination context and the gossip coordination types.

use wsg_gossip::{GossipParams, GossipStyle};
use wsg_net::SimTime;
use wsg_xml::Element;

use crate::error::CoordError;
use crate::{WSCOOR_NS, WSGOSSIP_NS};

/// The gossip flavours registered as WS-Coordination coordination types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GossipProtocol {
    /// WS-PushGossip — push-based dissemination (the paper's §3 service).
    Push,
    /// Lazy push: advertise ids, ship payloads on demand.
    LazyPush,
    /// Pull-based dissemination.
    Pull,
    /// Combined push-pull.
    PushPull,
    /// Anti-entropy state reconciliation.
    AntiEntropy,
}

impl GossipProtocol {
    /// The coordination-type URI carried in contexts.
    pub fn coordination_type(&self) -> String {
        format!("{WSGOSSIP_NS}:{}", self.suffix())
    }

    fn suffix(&self) -> &'static str {
        match self {
            GossipProtocol::Push => "push",
            GossipProtocol::LazyPush => "lazy-push",
            GossipProtocol::Pull => "pull",
            GossipProtocol::PushPull => "push-pull",
            GossipProtocol::AntiEntropy => "anti-entropy",
        }
    }

    /// Parse back from a coordination-type URI.
    pub fn from_coordination_type(uri: &str) -> Result<Self, CoordError> {
        let suffix = uri
            .strip_prefix(WSGOSSIP_NS)
            .and_then(|rest| rest.strip_prefix(':'))
            .ok_or_else(|| CoordError::UnsupportedCoordinationType(uri.to_string()))?;
        Ok(match suffix {
            "push" => GossipProtocol::Push,
            "lazy-push" => GossipProtocol::LazyPush,
            "pull" => GossipProtocol::Pull,
            "push-pull" => GossipProtocol::PushPull,
            "anti-entropy" => GossipProtocol::AntiEntropy,
            _ => return Err(CoordError::UnsupportedCoordinationType(uri.to_string())),
        })
    }

    /// The engine style this protocol maps to.
    pub fn style(&self) -> GossipStyle {
        match self {
            GossipProtocol::Push => GossipStyle::EagerPush,
            GossipProtocol::LazyPush => GossipStyle::LazyPush,
            GossipProtocol::Pull => GossipStyle::Pull,
            GossipProtocol::PushPull => GossipStyle::PushPull,
            GossipProtocol::AntiEntropy => GossipStyle::AntiEntropy,
        }
    }
}

/// Gossip policy fixed at activation: the `f`/`r` parameters the
/// coordinator hands to participants.
#[derive(Debug, Clone, PartialEq, Eq)]
#[derive(Default)]
pub struct GossipPolicy {
    params: GossipParams,
}


impl GossipPolicy {
    /// Policy with explicit parameters.
    pub fn new(params: GossipParams) -> Self {
        GossipPolicy { params }
    }

    /// Policy sized for atomic delivery in a system of `n` nodes (the
    /// "adequate parameter configurations" the paper says the coordinator
    /// can compute from the subscriber list).
    pub fn atomic_for(n: usize) -> Self {
        GossipPolicy { params: GossipParams::atomic_for(n) }
    }

    /// The `f`/`r` parameters.
    pub fn params(&self) -> &GossipParams {
        &self.params
    }
}

/// A WS-Coordination context: created by Activation, propagated as a SOAP
/// header alongside every gossiped message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordinationContext {
    identifier: String,
    coordination_type: String,
    registration_service: String,
    expires_millis: Option<u64>,
    policy: GossipPolicy,
}

impl CoordinationContext {
    /// A context with the given identity and gossip policy.
    pub fn new(
        identifier: impl Into<String>,
        protocol: GossipProtocol,
        registration_service: impl Into<String>,
        policy: GossipPolicy,
    ) -> Self {
        CoordinationContext {
            identifier: identifier.into(),
            coordination_type: protocol.coordination_type(),
            registration_service: registration_service.into(),
            expires_millis: None,
            policy,
        }
    }

    /// Builder: set the expiry (milliseconds of validity).
    pub fn with_expires(mut self, millis: u64) -> Self {
        self.expires_millis = Some(millis);
        self
    }

    /// The context identifier (a URI).
    pub fn identifier(&self) -> &str {
        &self.identifier
    }

    /// The coordination-type URI.
    pub fn coordination_type(&self) -> &str {
        &self.coordination_type
    }

    /// The gossip protocol, decoded from the coordination type.
    ///
    /// # Errors
    ///
    /// Fails when the type URI is not a WS-Gossip type.
    pub fn protocol(&self) -> Result<GossipProtocol, CoordError> {
        GossipProtocol::from_coordination_type(&self.coordination_type)
    }

    /// Address of the Registration service for this context.
    pub fn registration_service(&self) -> &str {
        &self.registration_service
    }

    /// Expiry in milliseconds, if bounded.
    pub fn expires_millis(&self) -> Option<u64> {
        self.expires_millis
    }

    /// The gossip policy (parameters) fixed at activation.
    pub fn policy(&self) -> &GossipPolicy {
        &self.policy
    }

    /// Serialise as the `wscoor:CoordinationContext` SOAP header block.
    pub fn to_header(&self) -> Element {
        let mut header = Element::in_ns("wscoor", WSCOOR_NS, "CoordinationContext");
        header.push_child(
            Element::in_ns("wscoor", WSCOOR_NS, "Identifier").with_text(self.identifier.clone()),
        );
        if let Some(expires) = self.expires_millis {
            header.push_child(
                Element::in_ns("wscoor", WSCOOR_NS, "Expires").with_text(expires.to_string()),
            );
        }
        header.push_child(
            Element::in_ns("wscoor", WSCOOR_NS, "CoordinationType")
                .with_text(self.coordination_type.clone()),
        );
        let mut reg = Element::in_ns("wscoor", WSCOOR_NS, "RegistrationService");
        reg.push_child(
            Element::in_ns("wsa", wsg_soap::WSA_NS, "Address")
                .with_text(self.registration_service.clone()),
        );
        header.push_child(reg);
        // WS-Gossip extension: the parameters, so any disseminator can
        // forward without a coordinator round-trip.
        let mut policy = Element::in_ns("wsg", WSGOSSIP_NS, "GossipPolicy");
        policy.push_child(
            Element::in_ns("wsg", WSGOSSIP_NS, "Fanout")
                .with_text(self.policy.params().fanout().to_string()),
        );
        policy.push_child(
            Element::in_ns("wsg", WSGOSSIP_NS, "Rounds")
                .with_text(self.policy.params().rounds().to_string()),
        );
        header.push_child(policy);
        header
    }

    /// Parse from the `wscoor:CoordinationContext` header block.
    ///
    /// # Errors
    ///
    /// Fails when mandatory children are missing or malformed.
    pub fn from_header(header: &Element) -> Result<Self, CoordError> {
        if !header.name().matches(Some(WSCOOR_NS), "CoordinationContext") {
            return Err(CoordError::Codec(format!(
                "expected CoordinationContext, found {}",
                header.name()
            )));
        }
        let identifier = header
            .child_ns(WSCOOR_NS, "Identifier")
            .map(|e| e.text())
            .ok_or_else(|| CoordError::Codec("missing Identifier".into()))?;
        let coordination_type = header
            .child_ns(WSCOOR_NS, "CoordinationType")
            .map(|e| e.text())
            .ok_or_else(|| CoordError::Codec("missing CoordinationType".into()))?;
        let registration_service = header
            .child_ns(WSCOOR_NS, "RegistrationService")
            .and_then(|r| r.child_ns(wsg_soap::WSA_NS, "Address"))
            .map(|a| a.text())
            .ok_or_else(|| CoordError::Codec("missing RegistrationService/Address".into()))?;
        let expires_millis = match header.child_ns(WSCOOR_NS, "Expires") {
            Some(e) => Some(
                e.text()
                    .parse::<u64>()
                    .map_err(|_| CoordError::Codec("invalid Expires".into()))?,
            ),
            None => None,
        };
        let policy = match header.child_ns(WSGOSSIP_NS, "GossipPolicy") {
            Some(p) => {
                let fanout = p
                    .child_ns(WSGOSSIP_NS, "Fanout")
                    .and_then(|f| f.text().parse::<usize>().ok())
                    .ok_or_else(|| CoordError::Codec("invalid GossipPolicy/Fanout".into()))?;
                let rounds = p
                    .child_ns(WSGOSSIP_NS, "Rounds")
                    .and_then(|r| r.text().parse::<u32>().ok())
                    .ok_or_else(|| CoordError::Codec("invalid GossipPolicy/Rounds".into()))?;
                GossipPolicy::new(GossipParams::new(fanout, rounds))
            }
            None => GossipPolicy::default(),
        };
        Ok(CoordinationContext {
            identifier,
            coordination_type,
            registration_service,
            expires_millis,
            policy,
        })
    }

    /// Whether this context has expired at virtual time `now`, counting
    /// from `created_at`.
    pub fn is_expired(&self, created_at: SimTime, now: SimTime) -> bool {
        match self.expires_millis {
            Some(millis) => now.since(created_at).as_millis() >= millis,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoordinationContext {
        CoordinationContext::new(
            "urn:uuid:ctx-1",
            GossipProtocol::Push,
            "http://coordinator/registration",
            GossipPolicy::new(GossipParams::new(5, 7)),
        )
        .with_expires(60_000)
    }

    #[test]
    fn header_roundtrip() {
        let ctx = sample();
        let parsed = CoordinationContext::from_header(&ctx.to_header()).unwrap();
        assert_eq!(parsed, ctx);
    }

    #[test]
    fn roundtrip_through_wire_xml() {
        let ctx = sample();
        let xml = ctx.to_header().to_xml_string();
        let element = Element::parse(&xml).unwrap();
        let parsed = CoordinationContext::from_header(&element).unwrap();
        assert_eq!(parsed, ctx);
    }

    #[test]
    fn protocol_mapping_bijective() {
        for protocol in [
            GossipProtocol::Push,
            GossipProtocol::LazyPush,
            GossipProtocol::Pull,
            GossipProtocol::PushPull,
            GossipProtocol::AntiEntropy,
        ] {
            let uri = protocol.coordination_type();
            assert_eq!(GossipProtocol::from_coordination_type(&uri).unwrap(), protocol);
        }
    }

    #[test]
    fn foreign_coordination_type_rejected() {
        let err = GossipProtocol::from_coordination_type(
            "http://docs.oasis-open.org/ws-tx/wsat/2006/06",
        )
        .unwrap_err();
        assert!(matches!(err, CoordError::UnsupportedCoordinationType(_)));
    }

    #[test]
    fn missing_identifier_rejected() {
        let mut header = sample().to_header();
        // Rebuild without Identifier.
        let no_id: Vec<_> = header
            .children()
            .into_iter()
            .filter(|c| c.local_name() != "Identifier")
            .cloned()
            .collect();
        header = Element::in_ns("wscoor", WSCOOR_NS, "CoordinationContext");
        for child in no_id {
            header.push_child(child);
        }
        assert!(matches!(
            CoordinationContext::from_header(&header),
            Err(CoordError::Codec(_))
        ));
    }

    #[test]
    fn expiry_semantics() {
        let ctx = sample(); // 60s validity
        let created = SimTime::from_secs(10);
        assert!(!ctx.is_expired(created, SimTime::from_secs(30)));
        assert!(ctx.is_expired(created, SimTime::from_secs(70)));
        let unbounded = CoordinationContext::new(
            "urn:uuid:ctx-2",
            GossipProtocol::Pull,
            "http://c/r",
            GossipPolicy::default(),
        );
        assert!(!unbounded.is_expired(created, SimTime::from_secs(10_000)));
    }

    #[test]
    fn policy_survives_header_without_extension() {
        // A context written by a non-gossip-aware WS-Coordination peer has
        // no GossipPolicy extension; defaults apply.
        let ctx = sample();
        let mut header = Element::in_ns("wscoor", WSCOOR_NS, "CoordinationContext");
        for child in ctx.to_header().children() {
            if child.local_name() != "GossipPolicy" {
                header.push_child(child.clone());
            }
        }
        let parsed = CoordinationContext::from_header(&header).unwrap();
        assert_eq!(parsed.policy(), &GossipPolicy::default());
    }
}
