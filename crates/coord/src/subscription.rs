//! Subscription management — the list the Coordinator role "manages"
//! (paper §3, Figure 1: consumers `subscribe` before dissemination).

use std::collections::BTreeMap;

use wsg_xml::Element;

use crate::error::CoordError;
use crate::WSGOSSIP_NS;

/// Per-topic subscriber lists, WS-Eventing-flavoured: consumers subscribe
/// with their endpoint and an optional expiry; the coordinator seeds
/// dissemination (and computes "adequate parameter configurations" from
/// the subscriber count) from this list.
///
/// Subscription keys are WS-Topics-style [`TopicFilter`](crate::TopicFilter)s: an exact path
/// subscribes to one topic, `market/*` to every direct child, and
/// `market/**` to the whole subtree. [`SubscriptionList::subscribers`]
/// takes a *concrete* topic and unions every matching filter.
#[derive(Debug, Clone, Default)]
pub struct SubscriptionList {
    // topic -> (endpoint -> expiry in virtual millis, u64::MAX = unbounded)
    topics: BTreeMap<String, BTreeMap<String, u64>>,
    stats: SubscriptionStats,
}

/// Monotone counters of subscription operations, exported as the
/// `wsg_coord_subscri*` metrics (see [`crate::obs`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubscriptionStats {
    /// First-time subscriptions.
    pub subscribed: u64,
    /// Lease renewals (re-subscribe of a live entry).
    pub renewed: u64,
    /// Replicated subscriptions merged in (new or lease-extending).
    pub merged: u64,
    /// Explicit unsubscribes that removed an entry.
    pub unsubscribed: u64,
    /// Subscriptions dropped by expiry collection.
    pub expired: u64,
}

impl SubscriptionList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribe `endpoint` to `topic` until `expires_at_millis` (virtual
    /// time; `u64::MAX` for unbounded). Re-subscribing renews the expiry.
    /// Returns `true` when the subscription was new.
    pub fn subscribe(
        &mut self,
        topic: &str,
        endpoint: impl Into<String>,
        expires_at_millis: u64,
    ) -> bool {
        let new = self
            .topics
            .entry(topic.to_string())
            .or_default()
            .insert(endpoint.into(), expires_at_millis)
            .is_none();
        if new {
            self.stats.subscribed += 1;
        } else {
            self.stats.renewed += 1;
        }
        new
    }

    /// Operation counters.
    pub fn stats(&self) -> &SubscriptionStats {
        &self.stats
    }

    /// Merge a replicated subscription: keeps the *later* expiry, so
    /// merging snapshots is commutative and idempotent (the distributed
    /// coordinator's convergence requirement). Returns `true` when the
    /// entry was new or its expiry extended.
    pub fn merge_subscription(
        &mut self,
        topic: &str,
        endpoint: impl Into<String>,
        expires_at_millis: u64,
    ) -> bool {
        let subs = self.topics.entry(topic.to_string()).or_default();
        let endpoint = endpoint.into();
        let changed = match subs.get_mut(&endpoint) {
            Some(current) if *current >= expires_at_millis => false,
            Some(current) => {
                *current = expires_at_millis;
                true
            }
            None => {
                subs.insert(endpoint, expires_at_millis);
                true
            }
        };
        if changed {
            self.stats.merged += 1;
        }
        changed
    }

    /// All (topic, endpoint, expiry) entries — the replication snapshot.
    pub fn snapshot(&self) -> Vec<(String, String, u64)> {
        let mut out: Vec<(String, String, u64)> = self
            .topics
            .iter()
            .flat_map(|(topic, subs)| {
                subs.iter()
                    .map(move |(endpoint, expiry)| (topic.clone(), endpoint.clone(), *expiry))
            })
            .collect();
        out.sort();
        out
    }

    /// Remove a subscription; `true` when something was removed.
    pub fn unsubscribe(&mut self, topic: &str, endpoint: &str) -> bool {
        let removed = self
            .topics
            .get_mut(topic)
            .map(|subs| subs.remove(endpoint).is_some())
            .unwrap_or(false);
        if removed {
            self.stats.unsubscribed += 1;
        }
        removed
    }

    /// Active subscribers of a **concrete** topic at virtual time
    /// `now_millis`, unioning every subscription filter that matches;
    /// sorted and deduplicated for determinism.
    pub fn subscribers(&self, topic: &str, now_millis: u64) -> Vec<String> {
        let mut list: Vec<String> = self
            .topics
            .iter()
            .filter(|(key, _)| Self::key_matches(key, topic))
            .flat_map(|(_, subs)| {
                subs.iter()
                    .filter(|(_, &expiry)| expiry > now_millis)
                    .map(|(endpoint, _)| endpoint.clone())
            })
            .collect();
        list.sort();
        list.dedup();
        list
    }

    /// Whether a stored subscription key (an exact path or a wildcard
    /// filter) covers the concrete `topic`. Unparseable keys fall back to
    /// literal equality, so historical plain-string topics keep working.
    fn key_matches(key: &str, topic: &str) -> bool {
        crate::topics::covers(key, topic)
    }

    /// Number of active subscribers.
    pub fn subscriber_count(&self, topic: &str, now_millis: u64) -> usize {
        self.subscribers(topic, now_millis).len()
    }

    /// Drop expired subscriptions; returns how many were removed.
    pub fn expire(&mut self, now_millis: u64) -> usize {
        let mut removed = 0;
        for subs in self.topics.values_mut() {
            let before = subs.len();
            subs.retain(|_, &mut expiry| expiry > now_millis);
            removed += before - subs.len();
        }
        self.topics.retain(|_, subs| !subs.is_empty());
        self.stats.expired += removed as u64;
        removed
    }

    /// All topics with at least one subscriber.
    pub fn topics(&self) -> Vec<&str> {
        let mut topics: Vec<&str> = self.topics.keys().map(String::as_str).collect();
        topics.sort();
        topics
    }

    /// Encode a `Subscribe` request body.
    pub fn encode_subscribe(topic: &str, endpoint: &str, expires_at_millis: u64) -> Element {
        let mut req = Element::in_ns("wsg", WSGOSSIP_NS, "Subscribe");
        req.push_child(Element::in_ns("wsg", WSGOSSIP_NS, "Topic").with_text(topic.to_string()));
        req.push_child(
            Element::in_ns("wsg", WSGOSSIP_NS, "Endpoint").with_text(endpoint.to_string()),
        );
        if expires_at_millis != u64::MAX {
            req.push_child(
                Element::in_ns("wsg", WSGOSSIP_NS, "Expires")
                    .with_text(expires_at_millis.to_string()),
            );
        }
        req
    }

    /// Decode a `Subscribe` request into `(topic, endpoint, expiry)`.
    ///
    /// # Errors
    ///
    /// Fails on structurally invalid requests.
    pub fn decode_subscribe(body: &Element) -> Result<(String, String, u64), CoordError> {
        if !body.name().matches(Some(WSGOSSIP_NS), "Subscribe") {
            return Err(CoordError::Codec(format!("expected Subscribe, found {}", body.name())));
        }
        let topic = body
            .child_ns(WSGOSSIP_NS, "Topic")
            .map(|t| t.text())
            .ok_or_else(|| CoordError::Codec("missing Topic".into()))?;
        let endpoint = body
            .child_ns(WSGOSSIP_NS, "Endpoint")
            .map(|e| e.text())
            .ok_or_else(|| CoordError::Codec("missing Endpoint".into()))?;
        let expires = match body.child_ns(WSGOSSIP_NS, "Expires") {
            Some(e) => e
                .text()
                .parse::<u64>()
                .map_err(|_| CoordError::Codec("invalid Expires".into()))?,
            None => u64::MAX,
        };
        Ok((topic, endpoint, expires))
    }
}

impl SubscriptionList {
    /// Encode an `Unsubscribe` request body.
    pub fn encode_unsubscribe(topic: &str, endpoint: &str) -> Element {
        let mut req = Element::in_ns("wsg", WSGOSSIP_NS, "Unsubscribe");
        req.push_child(Element::in_ns("wsg", WSGOSSIP_NS, "Topic").with_text(topic.to_string()));
        req.push_child(
            Element::in_ns("wsg", WSGOSSIP_NS, "Endpoint").with_text(endpoint.to_string()),
        );
        req
    }

    /// Decode an `Unsubscribe` request into `(topic, endpoint)`.
    ///
    /// # Errors
    ///
    /// Fails on structurally invalid requests.
    pub fn decode_unsubscribe(body: &Element) -> Result<(String, String), CoordError> {
        if !body.name().matches(Some(WSGOSSIP_NS), "Unsubscribe") {
            return Err(CoordError::Codec(format!(
                "expected Unsubscribe, found {}",
                body.name()
            )));
        }
        let topic = body
            .child_ns(WSGOSSIP_NS, "Topic")
            .map(|t| t.text())
            .ok_or_else(|| CoordError::Codec("missing Topic".into()))?;
        let endpoint = body
            .child_ns(WSGOSSIP_NS, "Endpoint")
            .map(|e| e.text())
            .ok_or_else(|| CoordError::Codec("missing Endpoint".into()))?;
        Ok((topic, endpoint))
    }
}

/// Action URI of the Subscribe operation.
pub fn subscribe_action() -> String {
    format!("{WSGOSSIP_NS}:Subscribe")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_unsubscribe() {
        let mut list = SubscriptionList::new();
        assert!(list.subscribe("ticks", "http://n1", u64::MAX));
        assert!(!list.subscribe("ticks", "http://n1", u64::MAX), "renewal is not new");
        assert!(list.subscribe("ticks", "http://n2", u64::MAX));
        assert_eq!(list.subscriber_count("ticks", 0), 2);
        assert!(list.unsubscribe("ticks", "http://n1"));
        assert!(!list.unsubscribe("ticks", "http://n1"));
        assert_eq!(list.subscribers("ticks", 0), ["http://n2".to_string()]);
    }

    #[test]
    fn topics_are_isolated() {
        let mut list = SubscriptionList::new();
        list.subscribe("a", "http://n1", u64::MAX);
        list.subscribe("b", "http://n2", u64::MAX);
        assert_eq!(list.subscribers("a", 0), ["http://n1".to_string()]);
        assert_eq!(list.topics(), ["a", "b"]);
    }

    #[test]
    fn expiry_excludes_and_collects() {
        let mut list = SubscriptionList::new();
        list.subscribe("t", "http://n1", 1_000);
        list.subscribe("t", "http://n2", u64::MAX);
        assert_eq!(list.subscriber_count("t", 500), 2);
        assert_eq!(list.subscriber_count("t", 1_000), 1, "expiry is exclusive");
        assert_eq!(list.expire(2_000), 1);
        assert_eq!(list.subscribers("t", 0), ["http://n2".to_string()]);
    }

    #[test]
    fn renewal_extends_expiry() {
        let mut list = SubscriptionList::new();
        list.subscribe("t", "http://n1", 1_000);
        list.subscribe("t", "http://n1", 5_000);
        assert_eq!(list.subscriber_count("t", 2_000), 1);
    }

    #[test]
    fn subscribe_codec_roundtrip() {
        let req = SubscriptionList::encode_subscribe("ticks", "http://n3", 9_000);
        let (topic, endpoint, expires) = SubscriptionList::decode_subscribe(&req).unwrap();
        assert_eq!((topic.as_str(), endpoint.as_str(), expires), ("ticks", "http://n3", 9_000));
    }

    #[test]
    fn subscribe_codec_unbounded() {
        let req = SubscriptionList::encode_subscribe("ticks", "http://n3", u64::MAX);
        let (_, _, expires) = SubscriptionList::decode_subscribe(&req).unwrap();
        assert_eq!(expires, u64::MAX);
    }

    #[test]
    fn decode_rejects_foreign_bodies() {
        assert!(SubscriptionList::decode_subscribe(&Element::new("x")).is_err());
        assert!(SubscriptionList::decode_unsubscribe(&Element::new("x")).is_err());
    }

    #[test]
    fn unsubscribe_codec_roundtrip() {
        let req = SubscriptionList::encode_unsubscribe("ticks", "http://n2");
        let (topic, endpoint) = SubscriptionList::decode_unsubscribe(&req).unwrap();
        assert_eq!((topic.as_str(), endpoint.as_str()), ("ticks", "http://n2"));
    }

    #[test]
    fn merge_subscription_takes_later_expiry() {
        let mut list = SubscriptionList::new();
        assert!(list.merge_subscription("t", "http://n1", 100));
        assert!(!list.merge_subscription("t", "http://n1", 50), "older expiry ignored");
        assert!(list.merge_subscription("t", "http://n1", 200));
        assert_eq!(list.subscriber_count("t", 150), 1);
    }

    #[test]
    fn wildcard_filters_union_into_subscribers() {
        let mut list = SubscriptionList::new();
        list.subscribe("market/nyse/ACME", "http://exact", u64::MAX);
        list.subscribe("market/*/ACME", "http://one-star", u64::MAX);
        list.subscribe("market/**", "http://subtree", u64::MAX);
        list.subscribe("weather/**", "http://other", u64::MAX);
        let subs = list.subscribers("market/nyse/ACME", 0);
        assert_eq!(
            subs,
            ["http://exact", "http://one-star", "http://subtree"]
        );
        assert_eq!(list.subscribers("market/lse", 0), ["http://subtree"]);
        assert_eq!(list.subscribers("weather/oslo", 0), ["http://other"]);
        assert!(list.subscribers("bonds", 0).is_empty());
    }

    #[test]
    fn same_endpoint_through_multiple_filters_deduplicated() {
        let mut list = SubscriptionList::new();
        list.subscribe("a/**", "http://n1", u64::MAX);
        list.subscribe("a/b", "http://n1", u64::MAX);
        assert_eq!(list.subscribers("a/b", 0), ["http://n1"]);
    }

    #[test]
    fn snapshot_lists_everything_sorted() {
        let mut list = SubscriptionList::new();
        list.subscribe("b", "http://n2", 5);
        list.subscribe("a", "http://n1", u64::MAX);
        let snap = list.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "a");
    }
}
