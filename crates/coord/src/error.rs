use std::fmt;

/// Errors raised by the coordination services and codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoordError {
    /// A referenced coordination context is unknown (or expired).
    UnknownContext(String),
    /// The coordination type URI is not a WS-Gossip type.
    UnsupportedCoordinationType(String),
    /// An element could not be decoded as the expected construct.
    Codec(String),
    /// A participant tried to register twice for the same context.
    AlreadyRegistered { context: String, participant: String },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::UnknownContext(id) => write!(f, "unknown coordination context '{id}'"),
            CoordError::UnsupportedCoordinationType(t) => {
                write!(f, "unsupported coordination type '{t}'")
            }
            CoordError::Codec(what) => write!(f, "malformed coordination element: {what}"),
            CoordError::AlreadyRegistered { context, participant } => {
                write!(f, "participant '{participant}' already registered in context '{context}'")
            }
        }
    }
}

impl std::error::Error for CoordError {}
