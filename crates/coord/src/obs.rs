//! Metric export for the coordinator services.
//!
//! The services themselves stay plain deterministic structs with
//! embedded counter structs ([`crate::activation::ActivationStats`],
//! [`crate::registration::RegistrationStats`],
//! [`crate::subscription::SubscriptionStats`]); this module copies a
//! snapshot of those counters — plus state-derived gauges like the
//! per-topic subscriber fan-out — into a [`wsg_obs::Registry`].
//! Counters are `set` from monotone sources, so re-exporting a newer
//! snapshot keeps the exposition monotone.

use wsg_obs::Registry;

use crate::activation::ActivationService;
use crate::registration::RegistrationService;
use crate::subscription::SubscriptionList;

/// Export one coordinator's service state under the `wsg_coord_*`
/// metric families. `now_millis` is the virtual time used to decide
/// which subscriptions are live (the fan-out gauges).
pub fn export(
    registry: &Registry,
    activation: &ActivationService,
    registration: &RegistrationService,
    subscriptions: &SubscriptionList,
    now_millis: u64,
) {
    let a = activation.stats();
    let counters: [(&str, &str, u64); 11] = [
        (
            "wsg_coord_contexts_created_total",
            "Coordination contexts minted by CreateCoordinationContext.",
            a.created,
        ),
        (
            "wsg_coord_contexts_adopted_total",
            "Contexts adopted from peer coordinators.",
            a.adopted,
        ),
        ("wsg_coord_contexts_expired_total", "Contexts dropped by expiry.", a.expired),
        (
            "wsg_coord_registrations_total",
            "First-time participant registrations.",
            registration.stats().registered,
        ),
        (
            "wsg_coord_reregistrations_total",
            "Idempotent re-registrations.",
            registration.stats().reregistrations,
        ),
        (
            "wsg_coord_deregistrations_total",
            "Participants removed.",
            registration.stats().deregistered,
        ),
        (
            "wsg_coord_subscribes_total",
            "First-time subscriptions.",
            subscriptions.stats().subscribed,
        ),
        (
            "wsg_coord_subscription_renewals_total",
            "Subscription lease renewals.",
            subscriptions.stats().renewed,
        ),
        (
            "wsg_coord_subscription_merges_total",
            "Replicated subscriptions merged in.",
            subscriptions.stats().merged,
        ),
        (
            "wsg_coord_unsubscribes_total",
            "Explicit unsubscribes.",
            subscriptions.stats().unsubscribed,
        ),
        (
            "wsg_coord_subscriptions_expired_total",
            "Subscriptions dropped by expiry.",
            subscriptions.stats().expired,
        ),
    ];
    for (name, help, value) in counters {
        registry.register_counter(name, help).set(value);
    }
    registry
        .register_gauge("wsg_coord_contexts_active", "Active coordination contexts.")
        .set(activation.active_count() as i64);
    registry
        .register_gauge(
            "wsg_coord_participants",
            "Registered participants across all contexts.",
        )
        .set(registration.snapshot().len() as i64);
    let fanout = registry.register_gauge_family(
        "wsg_coord_subscribers",
        "Live subscribers per topic (the dissemination fan-out).",
        &["topic"],
    );
    for topic in subscriptions.topics() {
        let count = subscriptions.subscriber_count(topic, now_millis) as i64;
        fanout.with(&[topic]).set(count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{GossipPolicy, GossipProtocol};
    use wsg_net::SimTime;

    #[test]
    fn export_covers_all_three_services() {
        let mut activation =
            ActivationService::new("http://c/activation", "http://c/registration");
        let ctx =
            activation.create_context(GossipProtocol::Push, GossipPolicy::default(), SimTime::ZERO);

        let mut registration = RegistrationService::new();
        registration.register(ctx.identifier(), "http://n1");
        registration.register(ctx.identifier(), "http://n1"); // re-registration
        registration.register(ctx.identifier(), "http://n2");

        let mut subscriptions = SubscriptionList::new();
        subscriptions.subscribe("quotes", "http://n1", u64::MAX);
        subscriptions.subscribe("quotes", "http://n2", 500);
        subscriptions.subscribe("alerts", "http://n3", u64::MAX);
        subscriptions.expire(1_000); // n2's lease lapses

        let registry = Registry::new();
        export(&registry, &activation, &registration, &subscriptions, 1_000);
        let text = registry.render();
        assert!(text.contains("wsg_coord_contexts_created_total 1\n"), "got: {text}");
        assert!(text.contains("wsg_coord_contexts_active 1\n"));
        assert!(text.contains("wsg_coord_registrations_total 2\n"));
        assert!(text.contains("wsg_coord_reregistrations_total 1\n"));
        assert!(text.contains("wsg_coord_participants 2\n"));
        assert!(text.contains("wsg_coord_subscribes_total 3\n"));
        assert!(text.contains("wsg_coord_subscriptions_expired_total 1\n"));
        assert!(text.contains("wsg_coord_subscribers{topic=\"alerts\"} 1\n"));
        assert!(text.contains("wsg_coord_subscribers{topic=\"quotes\"} 1\n"));
    }

    #[test]
    fn reexport_is_idempotent_and_monotone() {
        let registry = Registry::new();
        let activation = ActivationService::new("http://c/a", "http://c/r");
        let mut registration = RegistrationService::new();
        let subscriptions = SubscriptionList::new();
        registration.register("ctx", "http://n1");
        export(&registry, &activation, &registration, &subscriptions, 0);
        let first = registry.render();
        registration.register("ctx", "http://n2");
        export(&registry, &activation, &registration, &subscriptions, 0);
        let second = registry.render();
        assert!(first.contains("wsg_coord_registrations_total 1\n"));
        assert!(second.contains("wsg_coord_registrations_total 2\n"));
    }
}
