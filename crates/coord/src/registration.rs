//! The Registration service: `Register` / `RegisterResponse`.

use std::collections::BTreeMap;

use wsg_xml::Element;

use crate::error::CoordError;
use crate::{WSCOOR_NS, WSGOSSIP_NS};

/// What a participant receives when it registers for a gossip interaction:
/// the parameters to use and the peers to gossip to this round — "it is
/// thus capable of providing adequate parameter configurations and peers
/// for each gossip round" (paper §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipGrant {
    /// Fanout the participant should use.
    pub fanout: usize,
    /// Remaining-rounds budget.
    pub rounds: u32,
    /// Peer endpoints to forward to.
    pub peers: Vec<String>,
}

impl GossipGrant {
    /// Encode as a bare `wsg:GossipGrant` element (embeddable in a
    /// `RegisterResponse` or a `CreateCoordinationContextResponse`).
    pub fn to_element(&self) -> Element {
        let mut grant = Element::in_ns("wsg", WSGOSSIP_NS, "GossipGrant");
        grant.push_child(
            Element::in_ns("wsg", WSGOSSIP_NS, "Fanout").with_text(self.fanout.to_string()),
        );
        grant.push_child(
            Element::in_ns("wsg", WSGOSSIP_NS, "Rounds").with_text(self.rounds.to_string()),
        );
        let mut peers = Element::in_ns("wsg", WSGOSSIP_NS, "Peers");
        for peer in &self.peers {
            peers.push_child(Element::in_ns("wsg", WSGOSSIP_NS, "Peer").with_text(peer.clone()));
        }
        grant.push_child(peers);
        grant
    }

    /// Wrap the grant in a `RegisterResponse` body.
    pub fn to_register_response(&self) -> Element {
        let mut resp = Element::in_ns("wscoor", WSCOOR_NS, "RegisterResponse");
        resp.push_child(self.to_element());
        resp
    }

    /// Decode from a body element containing a `wsg:GossipGrant` child
    /// (e.g. a `RegisterResponse`).
    ///
    /// # Errors
    ///
    /// Fails on structurally invalid responses.
    pub fn from_parent(body: &Element) -> Result<Self, CoordError> {
        let grant = body
            .child_ns(WSGOSSIP_NS, "GossipGrant")
            .ok_or_else(|| CoordError::Codec("missing GossipGrant".into()))?;
        Self::from_element(grant)
    }

    /// Decode from a bare `wsg:GossipGrant` element.
    ///
    /// # Errors
    ///
    /// Fails on structurally invalid grants.
    pub fn from_element(grant: &Element) -> Result<Self, CoordError> {
        if !grant.name().matches(Some(WSGOSSIP_NS), "GossipGrant") {
            return Err(CoordError::Codec(format!(
                "expected GossipGrant, found {}",
                grant.name()
            )));
        }
        let fanout = grant
            .child_ns(WSGOSSIP_NS, "Fanout")
            .and_then(|f| f.text().parse().ok())
            .ok_or_else(|| CoordError::Codec("invalid Fanout".into()))?;
        let rounds = grant
            .child_ns(WSGOSSIP_NS, "Rounds")
            .and_then(|r| r.text().parse().ok())
            .ok_or_else(|| CoordError::Codec("invalid Rounds".into()))?;
        let peers = grant
            .child_ns(WSGOSSIP_NS, "Peers")
            .map(|p| p.children_named("Peer").iter().map(|e| e.text()).collect())
            .unwrap_or_default();
        Ok(GossipGrant { fanout, rounds, peers })
    }
}

/// The WS-Coordination Registration service specialised for gossip: keeps
/// the participant list per context and answers `Register` with a
/// [`GossipGrant`].
#[derive(Debug, Clone, Default)]
pub struct RegistrationService {
    // context id -> registered participant endpoints (insertion order)
    participants: BTreeMap<String, Vec<String>>,
    stats: RegistrationStats,
}

/// Monotone counters of Registration-service operations, exported as
/// the `wsg_coord_registrations_*` metrics (see [`crate::obs`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrationStats {
    /// First-time registrations.
    pub registered: u64,
    /// Idempotent re-registrations of an already-known participant.
    pub reregistrations: u64,
    /// Participants removed.
    pub deregistered: u64,
}

impl RegistrationService {
    /// An empty registration service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `participant` in `context`. Returns `true` when new,
    /// `false` for an idempotent re-registration.
    pub fn register(&mut self, context: &str, participant: impl Into<String>) -> bool {
        let participant = participant.into();
        let list = self.participants.entry(context.to_string()).or_default();
        if list.contains(&participant) {
            self.stats.reregistrations += 1;
            false
        } else {
            list.push(participant);
            self.stats.registered += 1;
            true
        }
    }

    /// Remove a participant (e.g. reported dead by membership).
    pub fn deregister(&mut self, context: &str, participant: &str) -> bool {
        match self.participants.get_mut(context) {
            Some(list) => {
                let before = list.len();
                list.retain(|p| p != participant);
                let removed = before != list.len();
                if removed {
                    self.stats.deregistered += 1;
                }
                removed
            }
            None => false,
        }
    }

    /// Operation counters.
    pub fn stats(&self) -> &RegistrationStats {
        &self.stats
    }

    /// All participants of a context, in registration order.
    pub fn participants(&self, context: &str) -> &[String] {
        self.participants.get(context).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of participants registered in a context.
    pub fn participant_count(&self, context: &str) -> usize {
        self.participants(context).len()
    }

    /// Build the grant for `participant`: everyone else in the context.
    /// The caller (the coordinator node) trims the peer list to `fanout`
    /// random picks per round, or hands out the full list and lets the
    /// gossip layer sample — both are supported by the protocol; handing
    /// the full list trades registration-message size for coordinator
    /// statelessness between rounds.
    pub fn grant_for(
        &self,
        context: &str,
        participant: &str,
        fanout: usize,
        rounds: u32,
    ) -> GossipGrant {
        let peers = self
            .participants(context)
            .iter()
            .filter(|p| p.as_str() != participant)
            .cloned()
            .collect();
        GossipGrant { fanout, rounds, peers }
    }

    /// All (context, participant) pairs — the replication snapshot.
    pub fn snapshot(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .participants
            .iter()
            .flat_map(|(context, list)| {
                list.iter().map(move |p| (context.clone(), p.clone()))
            })
            .collect();
        out.sort();
        out
    }

    /// Encode a `Register` request body.
    pub fn encode_register(context: &str, participant: &str) -> Element {
        let mut req = Element::in_ns("wscoor", WSCOOR_NS, "Register");
        req.push_child(
            Element::in_ns("wscoor", WSCOOR_NS, "ProtocolIdentifier")
                .with_text(format!("{WSGOSSIP_NS}:participant")),
        );
        let mut svc = Element::in_ns("wscoor", WSCOOR_NS, "ParticipantProtocolService");
        svc.push_child(
            Element::in_ns("wsa", wsg_soap::WSA_NS, "Address").with_text(participant.to_string()),
        );
        req.push_child(svc);
        req.push_child(
            Element::in_ns("wsg", WSGOSSIP_NS, "ContextIdentifier").with_text(context.to_string()),
        );
        req
    }

    /// Decode a `Register` request body into `(context id, participant)`.
    ///
    /// # Errors
    ///
    /// Fails on structurally invalid requests.
    pub fn decode_register(body: &Element) -> Result<(String, String), CoordError> {
        if !body.name().matches(Some(WSCOOR_NS), "Register") {
            return Err(CoordError::Codec(format!("expected Register, found {}", body.name())));
        }
        let participant = body
            .child_ns(WSCOOR_NS, "ParticipantProtocolService")
            .and_then(|s| s.child_ns(wsg_soap::WSA_NS, "Address"))
            .map(|a| a.text())
            .ok_or_else(|| CoordError::Codec("missing ParticipantProtocolService".into()))?;
        let context = body
            .child_ns(WSGOSSIP_NS, "ContextIdentifier")
            .map(|c| c.text())
            .ok_or_else(|| CoordError::Codec("missing ContextIdentifier".into()))?;
        Ok((context, participant))
    }
}

/// Action URI of the Register operation.
pub fn register_action() -> String {
    format!("{WSGOSSIP_NS}:Register")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut reg = RegistrationService::new();
        assert!(reg.register("ctx", "http://n1"));
        assert!(!reg.register("ctx", "http://n1"));
        assert_eq!(reg.participant_count("ctx"), 1);
    }

    #[test]
    fn grants_exclude_the_requester() {
        let mut reg = RegistrationService::new();
        for node in ["http://n1", "http://n2", "http://n3"] {
            reg.register("ctx", node);
        }
        let grant = reg.grant_for("ctx", "http://n2", 2, 5);
        assert_eq!(grant.peers, vec!["http://n1".to_string(), "http://n3".to_string()]);
        assert_eq!(grant.fanout, 2);
        assert_eq!(grant.rounds, 5);
    }

    #[test]
    fn deregister_removes() {
        let mut reg = RegistrationService::new();
        reg.register("ctx", "http://n1");
        reg.register("ctx", "http://n2");
        assert!(reg.deregister("ctx", "http://n1"));
        assert!(!reg.deregister("ctx", "http://n1"));
        assert_eq!(reg.participants("ctx"), ["http://n2".to_string()]);
    }

    #[test]
    fn contexts_are_isolated() {
        let mut reg = RegistrationService::new();
        reg.register("a", "http://n1");
        reg.register("b", "http://n2");
        assert_eq!(reg.participant_count("a"), 1);
        assert_eq!(reg.participant_count("b"), 1);
        assert!(reg.grant_for("a", "http://n1", 3, 3).peers.is_empty());
    }

    #[test]
    fn register_codec_roundtrip() {
        let req = RegistrationService::encode_register("urn:ctx:1", "http://n7/gossip");
        let (context, participant) = RegistrationService::decode_register(&req).unwrap();
        assert_eq!(context, "urn:ctx:1");
        assert_eq!(participant, "http://n7/gossip");
    }

    #[test]
    fn grant_codec_roundtrip() {
        let grant = GossipGrant {
            fanout: 4,
            rounds: 6,
            peers: vec!["http://a".into(), "http://b".into()],
        };
        let parsed = GossipGrant::from_element(&grant.to_element()).unwrap();
        assert_eq!(parsed, grant);
        let wrapped = GossipGrant::from_parent(&grant.to_register_response()).unwrap();
        assert_eq!(wrapped, grant);
    }

    #[test]
    fn grant_decodes_empty_peer_list() {
        let grant = GossipGrant { fanout: 1, rounds: 1, peers: vec![] };
        let parsed = GossipGrant::from_element(&grant.to_element()).unwrap();
        assert!(parsed.peers.is_empty());
    }

    #[test]
    fn decode_rejects_foreign_bodies() {
        assert!(RegistrationService::decode_register(&Element::new("x")).is_err());
        assert!(GossipGrant::from_element(&Element::new("x")).is_err());
    }
}
