//! The Activation service: `CreateCoordinationContext`.

use std::collections::BTreeMap;

use wsg_net::SimTime;
use wsg_xml::Element;

use crate::context::{CoordinationContext, GossipPolicy, GossipProtocol};
use crate::error::CoordError;
use crate::{WSCOOR_NS, WSGOSSIP_NS};

/// The WS-Coordination Activation service, specialised for gossip
/// coordination types.
///
/// An Initiator calls [`ActivationService::create_context`] before its
/// first notification; the returned [`CoordinationContext`] travels in the
/// header of every disseminated message, telling receivers where to
/// register and with what parameters to gossip.
#[derive(Debug, Clone)]
pub struct ActivationService {
    activation_address: String,
    registration_address: String,
    next_context: u64,
    // context id -> (context, creation time)
    active: BTreeMap<String, (CoordinationContext, SimTime)>,
    stats: ActivationStats,
}

/// Monotone counters of Activation-service operations, exported as the
/// `wsg_coord_contexts_*` metrics (see [`crate::obs`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActivationStats {
    /// Contexts minted by `CreateCoordinationContext`.
    pub created: u64,
    /// Contexts adopted from peer coordinators (first sighting only).
    pub adopted: u64,
    /// Contexts dropped by expiry collection.
    pub expired: u64,
}

impl ActivationService {
    /// A service advertising the given endpoints.
    pub fn new(
        activation_address: impl Into<String>,
        registration_address: impl Into<String>,
    ) -> Self {
        ActivationService {
            activation_address: activation_address.into(),
            registration_address: registration_address.into(),
            next_context: 0,
            active: BTreeMap::new(),
            stats: ActivationStats::default(),
        }
    }

    /// Operation counters.
    pub fn stats(&self) -> &ActivationStats {
        &self.stats
    }

    /// The Activation endpoint address.
    pub fn address(&self) -> &str {
        &self.activation_address
    }

    /// Handle `CreateCoordinationContext`: mint a fresh context for the
    /// requested gossip protocol with the given policy.
    pub fn create_context(
        &mut self,
        protocol: GossipProtocol,
        policy: GossipPolicy,
        now: SimTime,
    ) -> CoordinationContext {
        let identifier = format!("urn:ws-gossip:ctx:{}", self.next_context);
        self.next_context += 1;
        self.stats.created += 1;
        let context = CoordinationContext::new(
            identifier.clone(),
            protocol,
            self.registration_address.clone(),
            policy,
        );
        self.active.insert(identifier, (context.clone(), now));
        context
    }

    /// Adopt a context replicated from a peer coordinator (distributed
    /// coordinator mode). Idempotent; keeps the earliest creation time.
    pub fn adopt(&mut self, context: CoordinationContext, created_at: SimTime) {
        let key = context.identifier().to_string();
        if !self.active.contains_key(&key) {
            self.stats.adopted += 1;
            self.active.insert(key, (context, created_at));
        }
    }

    /// All active contexts — the replication snapshot.
    pub fn snapshot(&self) -> Vec<CoordinationContext> {
        let mut out: Vec<CoordinationContext> =
            self.active.values().map(|(c, _)| c.clone()).collect();
        out.sort_by(|a, b| a.identifier().cmp(b.identifier()));
        out
    }

    /// Look up an active (non-expired) context.
    ///
    /// # Errors
    ///
    /// Returns [`CoordError::UnknownContext`] for unknown or expired ids.
    pub fn lookup(&self, identifier: &str, now: SimTime) -> Result<&CoordinationContext, CoordError> {
        match self.active.get(identifier) {
            Some((context, created)) if !context.is_expired(*created, now) => Ok(context),
            _ => Err(CoordError::UnknownContext(identifier.to_string())),
        }
    }

    /// Drop expired contexts; returns how many were removed.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.active.len();
        self.active.retain(|_, (context, created)| !context.is_expired(*created, now));
        let removed = before - self.active.len();
        self.stats.expired += removed as u64;
        removed
    }

    /// Number of active contexts.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Decode a `CreateCoordinationContext` request body.
    ///
    /// # Errors
    ///
    /// Fails when the element is not a well-formed request.
    pub fn decode_request(body: &Element) -> Result<GossipProtocol, CoordError> {
        if !body.name().matches(Some(WSCOOR_NS), "CreateCoordinationContext") {
            return Err(CoordError::Codec(format!(
                "expected CreateCoordinationContext, found {}",
                body.name()
            )));
        }
        let uri = body
            .child_ns(WSCOOR_NS, "CoordinationType")
            .map(|e| e.text())
            .ok_or_else(|| CoordError::Codec("missing CoordinationType".into()))?;
        GossipProtocol::from_coordination_type(&uri)
    }

    /// Encode a `CreateCoordinationContext` request body.
    pub fn encode_request(protocol: GossipProtocol) -> Element {
        let mut req = Element::in_ns("wscoor", WSCOOR_NS, "CreateCoordinationContext");
        req.push_child(
            Element::in_ns("wscoor", WSCOOR_NS, "CoordinationType")
                .with_text(protocol.coordination_type()),
        );
        req
    }

    /// Encode the `CreateCoordinationContextResponse` body embedding the
    /// context.
    pub fn encode_response(context: &CoordinationContext) -> Element {
        let mut resp =
            Element::in_ns("wscoor", WSCOOR_NS, "CreateCoordinationContextResponse");
        resp.push_child(context.to_header());
        resp
    }

    /// Decode a `CreateCoordinationContextResponse` body.
    ///
    /// # Errors
    ///
    /// Fails when the embedded context is missing or malformed.
    pub fn decode_response(body: &Element) -> Result<CoordinationContext, CoordError> {
        if !body
            .name()
            .matches(Some(WSCOOR_NS), "CreateCoordinationContextResponse")
        {
            return Err(CoordError::Codec(format!(
                "expected CreateCoordinationContextResponse, found {}",
                body.name()
            )));
        }
        let ctx = body
            .child_ns(WSCOOR_NS, "CoordinationContext")
            .ok_or_else(|| CoordError::Codec("missing CoordinationContext".into()))?;
        CoordinationContext::from_header(ctx)
    }
}

/// Action URI of the CreateCoordinationContext operation.
pub fn create_context_action() -> String {
    format!("{WSGOSSIP_NS}:CreateCoordinationContext")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_gossip::GossipParams;

    fn service() -> ActivationService {
        ActivationService::new("http://c/activation", "http://c/registration")
    }

    #[test]
    fn create_yields_unique_identifiers() {
        let mut s = service();
        let a = s.create_context(GossipProtocol::Push, GossipPolicy::default(), SimTime::ZERO);
        let b = s.create_context(GossipProtocol::Push, GossipPolicy::default(), SimTime::ZERO);
        assert_ne!(a.identifier(), b.identifier());
        assert_eq!(s.active_count(), 2);
    }

    #[test]
    fn lookup_finds_active_context() {
        let mut s = service();
        let ctx = s.create_context(GossipProtocol::Pull, GossipPolicy::default(), SimTime::ZERO);
        let found = s.lookup(ctx.identifier(), SimTime::from_secs(1)).unwrap();
        assert_eq!(found.identifier(), ctx.identifier());
        assert!(s.lookup("urn:nope", SimTime::ZERO).is_err());
    }

    #[test]
    fn expired_contexts_rejected_and_collected() {
        let mut s = service();
        let ctx = s
            .create_context(GossipProtocol::Push, GossipPolicy::default(), SimTime::ZERO);
        // Manually re-insert with an expiry for the test.
        let bounded = CoordinationContext::new(
            ctx.identifier(),
            GossipProtocol::Push,
            "http://c/registration",
            GossipPolicy::default(),
        )
        .with_expires(1_000);
        s.active
            .insert(ctx.identifier().to_string(), (bounded, SimTime::ZERO));
        assert!(s.lookup(ctx.identifier(), SimTime::from_millis(500)).is_ok());
        assert!(s.lookup(ctx.identifier(), SimTime::from_secs(2)).is_err());
        assert_eq!(s.expire(SimTime::from_secs(2)), 1);
        assert_eq!(s.active_count(), 0);
    }

    #[test]
    fn request_codec_roundtrip() {
        let req = ActivationService::encode_request(GossipProtocol::LazyPush);
        assert_eq!(
            ActivationService::decode_request(&req).unwrap(),
            GossipProtocol::LazyPush
        );
    }

    #[test]
    fn response_codec_roundtrip() {
        let mut s = service();
        let ctx = s.create_context(
            GossipProtocol::PushPull,
            GossipPolicy::new(GossipParams::new(6, 9)),
            SimTime::ZERO,
        );
        let resp = ActivationService::encode_response(&ctx);
        let parsed = ActivationService::decode_response(&resp).unwrap();
        assert_eq!(parsed, ctx);
        assert_eq!(parsed.policy().params().fanout(), 6);
    }

    #[test]
    fn decode_rejects_wrong_elements() {
        let wrong = Element::new("NotARequest");
        assert!(ActivationService::decode_request(&wrong).is_err());
        assert!(ActivationService::decode_response(&wrong).is_err());
    }
}
