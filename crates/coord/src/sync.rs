//! Coordinator-state synchronisation — the distributed Coordinator.
//!
//! Paper §3: "a distributed Coordinator is supported by WS-Coordination
//! and thus also by WS-Gossip, as the list of subscribers can be
//! maintained in a distributed fashion as proposed by WS-Membership."
//!
//! Coordinators replicate their subscription lists, participant
//! registrations and active contexts to each other by — fittingly —
//! gossip: each coordinator periodically sends a [`CoordinatorSync`]
//! snapshot to a random peer coordinator; merging is a commutative,
//! idempotent union (expiries merge by maximum), so the replicas converge.

use wsg_xml::Element;

use crate::context::CoordinationContext;
use crate::error::CoordError;
use crate::WSGOSSIP_NS;

/// A replication snapshot of one coordinator's state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoordinatorSync {
    /// (topic, subscriber endpoint, expiry in virtual millis).
    pub subscriptions: Vec<(String, String, u64)>,
    /// (context id, participant endpoint).
    pub registrations: Vec<(String, String)>,
    /// Active contexts with their topics: (context, topic).
    pub contexts: Vec<(CoordinationContext, String)>,
}

impl CoordinatorSync {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total entries carried (for load accounting).
    pub fn len(&self) -> usize {
        self.subscriptions.len() + self.registrations.len() + self.contexts.len()
    }

    /// Whether the snapshot carries nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encode as the `wsg:CoordinatorSync` body element.
    pub fn to_element(&self) -> Element {
        let mut body = Element::in_ns("wsg", WSGOSSIP_NS, "CoordinatorSync");
        for (topic, endpoint, expires) in &self.subscriptions {
            let mut sub = Element::in_ns("wsg", WSGOSSIP_NS, "Subscription");
            sub.set_attr("topic", topic.clone());
            sub.set_attr("endpoint", endpoint.clone());
            if *expires != u64::MAX {
                sub.set_attr("expires", expires.to_string());
            }
            body.push_child(sub);
        }
        for (context, participant) in &self.registrations {
            let mut reg = Element::in_ns("wsg", WSGOSSIP_NS, "Registration");
            reg.set_attr("context", context.clone());
            reg.set_attr("participant", participant.clone());
            body.push_child(reg);
        }
        for (context, topic) in &self.contexts {
            let mut entry = Element::in_ns("wsg", WSGOSSIP_NS, "ContextEntry");
            entry.set_attr("topic", topic.clone());
            entry.push_child(context.to_header());
            body.push_child(entry);
        }
        body
    }

    /// Decode from the `wsg:CoordinatorSync` body element.
    ///
    /// # Errors
    ///
    /// Fails on structurally invalid snapshots.
    pub fn from_element(body: &Element) -> Result<Self, CoordError> {
        if !body.name().matches(Some(WSGOSSIP_NS), "CoordinatorSync") {
            return Err(CoordError::Codec(format!(
                "expected CoordinatorSync, found {}",
                body.name()
            )));
        }
        let mut sync = CoordinatorSync::new();
        for child in body.children() {
            match child.local_name() {
                "Subscription" => {
                    let topic = child
                        .attr("topic")
                        .ok_or_else(|| CoordError::Codec("Subscription without topic".into()))?;
                    let endpoint = child
                        .attr("endpoint")
                        .ok_or_else(|| CoordError::Codec("Subscription without endpoint".into()))?;
                    let expires = match child.attr("expires") {
                        Some(raw) => raw
                            .parse()
                            .map_err(|_| CoordError::Codec("invalid expires".into()))?,
                        None => u64::MAX,
                    };
                    sync.subscriptions.push((topic.to_string(), endpoint.to_string(), expires));
                }
                "Registration" => {
                    let context = child
                        .attr("context")
                        .ok_or_else(|| CoordError::Codec("Registration without context".into()))?;
                    let participant = child.attr("participant").ok_or_else(|| {
                        CoordError::Codec("Registration without participant".into())
                    })?;
                    sync.registrations.push((context.to_string(), participant.to_string()));
                }
                "ContextEntry" => {
                    let topic = child
                        .attr("topic")
                        .ok_or_else(|| CoordError::Codec("ContextEntry without topic".into()))?
                        .to_string();
                    let header = child
                        .child_ns(crate::WSCOOR_NS, "CoordinationContext")
                        .ok_or_else(|| CoordError::Codec("ContextEntry without context".into()))?;
                    sync.contexts.push((CoordinationContext::from_header(header)?, topic));
                }
                _ => {}
            }
        }
        Ok(sync)
    }
}

/// Action URI of the CoordinatorSync operation.
pub fn sync_action() -> String {
    format!("{WSGOSSIP_NS}:CoordinatorSync")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{GossipPolicy, GossipProtocol};

    fn sample() -> CoordinatorSync {
        CoordinatorSync {
            subscriptions: vec![
                ("quotes".into(), "http://node3/gossip".into(), u64::MAX),
                ("quotes".into(), "http://node4/gossip".into(), 90_000),
            ],
            registrations: vec![("urn:ws-gossip:ctx:0".into(), "http://node3/gossip".into())],
            contexts: vec![(
                CoordinationContext::new(
                    "urn:ws-gossip:ctx:0",
                    GossipProtocol::Push,
                    "http://node0/registration",
                    GossipPolicy::default(),
                ),
                "quotes".into(),
            )],
        }
    }

    #[test]
    fn element_roundtrip() {
        let sync = sample();
        let parsed = CoordinatorSync::from_element(&sync.to_element()).unwrap();
        assert_eq!(parsed, sync);
    }

    #[test]
    fn wire_roundtrip() {
        let sync = sample();
        let xml = sync.to_element().to_xml_string();
        let parsed = CoordinatorSync::from_element(&Element::parse(&xml).unwrap()).unwrap();
        assert_eq!(parsed, sync);
    }

    #[test]
    fn unbounded_expiry_omitted_and_restored() {
        let sync = sample();
        let xml = sync.to_element().to_xml_string();
        assert!(!xml.contains(&u64::MAX.to_string()), "MAX not serialized literally");
        let parsed = CoordinatorSync::from_element(&Element::parse(&xml).unwrap()).unwrap();
        assert_eq!(parsed.subscriptions[0].2, u64::MAX);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let sync = CoordinatorSync::new();
        assert!(sync.is_empty());
        let parsed = CoordinatorSync::from_element(&sync.to_element()).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn rejects_foreign_root() {
        assert!(CoordinatorSync::from_element(&Element::new("x")).is_err());
    }

    #[test]
    fn rejects_malformed_entries() {
        let mut body = Element::in_ns("wsg", WSGOSSIP_NS, "CoordinatorSync");
        body.push_child(Element::in_ns("wsg", WSGOSSIP_NS, "Subscription")); // no attrs
        assert!(CoordinatorSync::from_element(&body).is_err());
    }
}
