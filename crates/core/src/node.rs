//! The WS-Gossip node: one service endpoint with its middleware stack.

use std::collections::BTreeMap;

use wsg_gossip::FifoBuffer;

use wsg_coord::{
    ActivationService, CoordinationContext, CoordinatorSync, GossipPolicy, GossipProtocol,
    RegistrationService, SubscriptionList, WSGOSSIP_NS,
};
use std::sync::Arc;

use wsg_net::{
    AllLive, Context, NodeId, Pcg32, PeerLiveness, Protocol, RngExt, SimDuration, SimTime,
    SplitMix64, TimerTag,
};
use wsg_soap::handler::{Direction, Disposition};
use wsg_soap::{EndpointReference, Envelope, HandlerChain, MessageHeaders, Uuid};
use wsg_xml::Element;

use crate::actions;
use crate::endpoint::{endpoint_of, node_of, registration_endpoint, topic_uri};
use crate::header::GossipHeader;
use crate::layer::{GossipLayerHandle, GossipLayerStats};

/// Timer tag for the coordinator replication tick (distributed mode).
pub const COORD_SYNC_TICK: TimerTag = TimerTag(0xC003D);

/// Timer tag driving scheduled publications (self-driving deployments).
pub const PUBLISH_TICK: TimerTag = TimerTag(0x9B71);

/// Timer tag driving subscription lease renewal.
pub const RENEW_TICK: TimerTag = TimerTag(0x2E4E);

/// Interval between coordinator replication gossips.
pub const COORD_SYNC_INTERVAL: SimDuration = SimDuration::from_millis(250);

/// The four roles of paper §3 / Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Hosts Activation, Registration and the subscription list.
    Coordinator,
    /// Application changed to activate a context and issue one notification.
    Initiator,
    /// Application oblivious; gossip handler configured in the stack.
    Disseminator,
    /// Completely unchanged service.
    Consumer,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Role::Coordinator => "coordinator",
            Role::Initiator => "initiator",
            Role::Disseminator => "disseminator",
            Role::Consumer => "consumer",
        };
        f.write_str(name)
    }
}

/// A notification delivered to the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredOp {
    /// The topic it belongs to ("?" if the gossip header was absent).
    pub topic: String,
    /// Originating endpoint.
    pub origin: String,
    /// Per-origin sequence number.
    pub seq: u64,
    /// Hop count at delivery.
    pub round: u32,
    /// Virtual time of delivery.
    pub at: SimTime,
    /// The application payload.
    pub payload: Element,
}

/// Node-level counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Wire messages received.
    pub messages_received: u64,
    /// Wire messages that failed to parse as SOAP.
    pub parse_errors: u64,
    /// Faults produced by the inbound chain.
    pub faults: u64,
    /// Envelopes that could not be routed to a node.
    pub unroutable: u64,
    /// Application notifications delivered (including duplicates at
    /// consumers, which have no gossip layer to suppress them).
    pub ops_delivered: u64,
    /// Coordinator-sync messages received (distributed coordinator mode).
    pub sync_received: u64,
}

#[derive(Debug)]
struct CoordinatorState {
    activation: ActivationService,
    registration: RegistrationService,
    subscriptions: SubscriptionList,
    // context id -> topic
    topics: BTreeMap<String, String>,
    policy: Option<GossipPolicy>,
    protocol: GossipProtocol,
    // Peer coordinators (distributed coordinator mode, paper §3).
    peers: Vec<NodeId>,
}

#[derive(Debug, Default)]
struct SelfDrive {
    // Subscribe to these topics at startup.
    subscribe: Vec<String>,
    // Activate + publish this schedule: (topic, payloads, interval).
    publish: Option<(String, Vec<Element>, SimDuration)>,
    published: usize,
    // Bounded subscription lease; renewed at half-life while alive.
    subscription_ttl: Option<SimDuration>,
    // Topics this node has subscribed to (for renewal).
    subscribed_topics: Vec<String>,
}

#[derive(Debug, Default)]
struct InitiatorState {
    // topic -> active context
    contexts: BTreeMap<String, CoordinationContext>,
    // topics with an activation in flight
    activating: Vec<String>,
    // notifications queued until their topic's context is ready
    pending: Vec<(String, Element)>,
    next_seq: u64,
}

/// One WS-Gossip node; implements [`wsg_net::Protocol`] over serialized
/// SOAP envelopes. See the [crate docs](crate) for the quickstart.
#[derive(Debug)]
pub struct WsGossipNode {
    me: NodeId,
    role: Role,
    coordinator: NodeId,
    endpoint: String,
    chain: HandlerChain,
    layer: Option<GossipLayerHandle>,
    coord: Option<CoordinatorState>,
    init: InitiatorState,
    ops: Vec<DeliveredOp>,
    events: Vec<String>,
    stats: NodeStats,
    rng: Pcg32,
    drive: SelfDrive,
    // Per-origin FIFO reordering of app deliveries, when enabled.
    fifo: Option<FifoBuffer<DeliveredOp>>,
    // Reusable serialisation buffer: every outbound envelope is written
    // into it, so steady-state transmits reuse one allocation per node.
    scratch: String,
    // Liveness oracle: coordinator grants and layer peer sampling exclude
    // members it reports dead. `AllLive` for static deployments.
    liveness: Arc<dyn PeerLiveness>,
}

impl WsGossipNode {
    fn new(me: NodeId, role: Role, coordinator: NodeId, seed: u64) -> Self {
        let endpoint = endpoint_of(me);
        let mut seeder = SplitMix64::new(seed ^ (me.index() as u64).wrapping_mul(0x9E37));
        let layer = match role {
            Role::Initiator | Role::Disseminator => {
                Some(GossipLayerHandle::new(endpoint.clone(), seeder.next()))
            }
            _ => None,
        };
        let mut chain = HandlerChain::new();
        if let Some(layer) = &layer {
            chain.push(Box::new(layer.handler()));
        }
        let coord = match role {
            Role::Coordinator => Some(CoordinatorState {
                activation: ActivationService::new(
                    crate::endpoint::activation_endpoint(me),
                    registration_endpoint(me),
                ),
                registration: RegistrationService::new(),
                subscriptions: SubscriptionList::new(),
                topics: BTreeMap::new(),
                policy: None,
                protocol: GossipProtocol::Push,
                peers: Vec::new(),
            }),
            _ => None,
        };
        WsGossipNode {
            me,
            role,
            coordinator,
            endpoint,
            chain,
            layer,
            coord,
            init: InitiatorState::default(),
            ops: Vec::new(),
            events: Vec::new(),
            stats: NodeStats::default(),
            rng: Pcg32::new(seeder.next(), me.index() as u64),
            drive: SelfDrive::default(),
            fifo: None,
            scratch: String::new(),
            liveness: Arc::new(AllLive),
        }
    }

    /// A Coordinator node.
    pub fn coordinator(me: NodeId) -> Self {
        Self::new(me, Role::Coordinator, me, 0)
    }

    /// An Initiator whose coordinator is `coordinator`.
    pub fn initiator(me: NodeId, coordinator: NodeId) -> Self {
        Self::new(me, Role::Initiator, coordinator, 0)
    }

    /// A Disseminator (gossip handler in the stack, app oblivious).
    pub fn disseminator(me: NodeId, coordinator: NodeId) -> Self {
        Self::new(me, Role::Disseminator, coordinator, 0)
    }

    /// A Consumer (completely unchanged service).
    pub fn consumer(me: NodeId, coordinator: NodeId) -> Self {
        Self::new(me, Role::Consumer, coordinator, 0)
    }

    /// Builder: replace the deterministic seed (varies peer-sampling).
    pub fn with_seed(self, seed: u64) -> Self {
        Self::new(self.me, self.role, self.coordinator, seed)
    }

    /// Builder (coordinator only): fix the gossip policy handed to new
    /// contexts instead of sizing from the subscriber count.
    pub fn with_policy(mut self, policy: GossipPolicy) -> Self {
        if let Some(coord) = &mut self.coord {
            coord.policy = Some(policy);
        }
        self
    }

    /// Builder: subscribe with a bounded lease of `ttl`, renewed
    /// automatically at half-life (WS-Eventing-style expirations): a
    /// crashed subscriber silently ages out of the coordinator's list
    /// instead of being gossiped to forever.
    pub fn with_subscription_ttl(mut self, ttl: SimDuration) -> Self {
        self.drive.subscription_ttl = Some(ttl);
        self
    }

    /// Builder: deliver notifications to the application in per-origin
    /// FIFO order (hold out-of-order arrivals until the gap fills). The
    /// ordering guarantee the stock-ticker scenario needs.
    pub fn with_fifo_delivery(mut self) -> Self {
        self.fifo = Some(FifoBuffer::new());
        self
    }

    /// Builder: subscribe to `topic` automatically at startup, so the node
    /// needs no external driver (live `ThreadNet` deployments).
    pub fn with_auto_subscribe(mut self, topic: impl Into<String>) -> Self {
        self.drive.subscribe.push(topic.into());
        self
    }

    /// Builder (initiator only): at startup activate `topic` and publish
    /// the given payloads one per `interval` — a fully self-driving
    /// publisher for live deployments.
    pub fn with_publish_schedule(
        mut self,
        topic: impl Into<String>,
        payloads: Vec<Element>,
        interval: SimDuration,
    ) -> Self {
        self.drive.publish = Some((topic.into(), payloads, interval));
        self
    }

    /// Builder: consult a liveness oracle (a `wsg_cluster` membership
    /// plane in live deployments) when building gossip grants and when
    /// the gossip layer samples per-round forward targets — members the
    /// oracle reports dead stop being gossip destinations immediately,
    /// without waiting for their subscription lease to expire. Apply
    /// *after* [`WsGossipNode::with_seed`] (which rebuilds the node).
    pub fn with_liveness(mut self, liveness: Arc<dyn PeerLiveness>) -> Self {
        if let Some(layer) = &self.layer {
            layer.set_liveness(Arc::clone(&liveness));
        }
        self.liveness = liveness;
        self
    }

    /// Builder (coordinator only): enter distributed-coordinator mode with
    /// the given peer coordinators — "the list of subscribers can be
    /// maintained in a distributed fashion as proposed by WS-Membership"
    /// (paper §3). State replicates by periodic gossip; see
    /// [`wsg_coord::CoordinatorSync`].
    pub fn with_coordinator_peers(mut self, peers: Vec<NodeId>) -> Self {
        if let Some(coord) = &mut self.coord {
            coord.peers = peers.into_iter().filter(|p| *p != self.me).collect();
        }
        self
    }

    /// This node's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// This node's endpoint URI.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Application-level deliveries, in order (consumers may see
    /// duplicates; see [`WsGossipNode::distinct_ops`]).
    pub fn ops(&self) -> &[DeliveredOp] {
        &self.ops
    }

    /// Deliveries deduplicated by (origin, seq).
    pub fn distinct_ops(&self) -> Vec<&DeliveredOp> {
        let mut seen = std::collections::BTreeSet::new();
        self.ops
            .iter()
            .filter(|op| seen.insert((op.origin.clone(), op.seq)))
            .collect()
    }

    /// Human-readable application/middleware event log (the Figure 1 trace).
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// Node counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Gossip-layer counters, when the role has a gossip layer.
    pub fn layer_stats(&self) -> Option<GossipLayerStats> {
        self.layer.as_ref().map(|l| l.stats())
    }

    /// Export this node's counters into `registry` as `wsg_node_*` /
    /// `wsg_layer_*` families (plus the coordinator's `wsg_coord_*`
    /// families when this node hosts the coordination services).
    ///
    /// Observe-only snapshot: all sources are monotone, so re-exporting
    /// after more progress keeps every counter monotone. Safe to call
    /// from bench/report code without perturbing the simulation.
    pub fn export_metrics(&self, registry: &wsg_obs::Registry, now: SimTime) {
        let set = |name: &str, help: &str, value: u64| {
            registry.register_counter(name, help).set(value);
        };
        set(
            "wsg_node_messages_received_total",
            "Wire messages received by the node.",
            self.stats.messages_received,
        );
        set(
            "wsg_node_parse_errors_total",
            "Wire messages that failed to parse as SOAP.",
            self.stats.parse_errors,
        );
        set(
            "wsg_node_faults_total",
            "Faults produced by the inbound handler chain.",
            self.stats.faults,
        );
        set(
            "wsg_node_unroutable_total",
            "Envelopes that could not be routed to a node.",
            self.stats.unroutable,
        );
        set(
            "wsg_node_ops_delivered_total",
            "Application notifications delivered.",
            self.stats.ops_delivered,
        );
        set(
            "wsg_node_sync_received_total",
            "Coordinator-sync messages received.",
            self.stats.sync_received,
        );
        if let Some(layer) = self.layer_stats() {
            set(
                "wsg_layer_intercepted_total",
                "Outgoing notifications intercepted by the gossip layer.",
                layer.intercepted,
            );
            set(
                "wsg_layer_forwards_sent_total",
                "Forward copies re-routed to peers by the gossip layer.",
                layer.forwards_sent,
            );
            set(
                "wsg_layer_registers_sent_total",
                "Register calls issued for unknown gossip interactions.",
                layer.registers_sent,
            );
            set(
                "wsg_layer_duplicates_suppressed_total",
                "Inbound copies suppressed as duplicates by the gossip layer.",
                layer.duplicates_suppressed,
            );
        }
        if let Some(coord) = &self.coord {
            wsg_coord::obs::export(
                registry,
                &coord.activation,
                &coord.registration,
                &coord.subscriptions,
                now.as_millis(),
            );
        }
    }

    /// Coordinator: number of active subscribers of `topic`.
    pub fn subscriber_count(&self, topic: &str, now: SimTime) -> usize {
        self.coord
            .as_ref()
            .map(|c| c.subscriptions.subscriber_count(topic, now.as_millis()))
            .unwrap_or(0)
    }

    /// Coordinator: all known subscriber endpoints of a topic (post-sync
    /// in distributed mode this includes subscriptions taken elsewhere).
    pub fn subscribers_of(&self, topic: &str, now: SimTime) -> Vec<String> {
        self.coord
            .as_ref()
            .map(|c| c.subscriptions.subscribers(topic, now.as_millis()))
            .unwrap_or_default()
    }

    /// Coordinator: number of registered participants of a context.
    pub fn participant_count(&self, context_id: &str) -> usize {
        self.coord
            .as_ref()
            .map(|c| c.registration.participant_count(context_id))
            .unwrap_or(0)
    }

    /// Initiator: the active context for `topic`, once activation completed.
    pub fn context_for(&self, topic: &str) -> Option<&CoordinationContext> {
        self.init.contexts.get(topic)
    }

    /// Whether `endpoint` is a usable gossip destination per the liveness
    /// oracle (endpoints outside the node-id scheme are never vetoed).
    fn live_peer(&self, endpoint: &str) -> bool {
        node_of(endpoint).is_none_or(|id| self.liveness.is_live(id))
    }

    fn log(&mut self, now: SimTime, line: impl Into<String>) {
        self.events.push(format!("[{now}] {}", line.into()));
    }

    fn fresh_id(&mut self) -> String {
        Uuid::random(&mut self.rng).to_urn()
    }

    // ----- public operations (drive via SimNet::invoke) -----

    /// Subscribe this node to `topic` at its coordinator (consumers and
    /// disseminators in Figure 1 all subscribe). With a configured
    /// [`WsGossipNode::with_subscription_ttl`], the lease is bounded and
    /// auto-renewed.
    pub fn subscribe(&mut self, topic: &str, ctx: &mut dyn Context<String>) {
        let expiry = match self.drive.subscription_ttl {
            Some(ttl) => (ctx.now() + ttl).as_millis(),
            None => u64::MAX,
        };
        if !self.drive.subscribed_topics.iter().any(|t| t == topic) {
            self.drive.subscribed_topics.push(topic.to_string());
            if let Some(ttl) = self.drive.subscription_ttl {
                ctx.set_timer(
                    SimDuration::from_micros(ttl.as_micros() / 2),
                    RENEW_TICK,
                );
            }
        }
        let body = SubscriptionList::encode_subscribe(topic, &self.endpoint, expiry);
        let headers = MessageHeaders::request(
            endpoint_of(self.coordinator),
            actions::subscribe(),
        )
        .with_message_id(self.fresh_id())
        .with_from(EndpointReference::new(self.endpoint.clone()))
        .with_reply_to(EndpointReference::new(self.endpoint.clone()));
        self.log(ctx.now(), format!("subscribe topic={topic}"));
        self.transmit(Envelope::request(headers, body), ctx);
    }

    /// Cancel this node's subscription to `topic`.
    pub fn unsubscribe(&mut self, topic: &str, ctx: &mut dyn Context<String>) {
        let body = SubscriptionList::encode_unsubscribe(topic, &self.endpoint);
        let headers = MessageHeaders::request(
            endpoint_of(self.coordinator),
            actions::unsubscribe(),
        )
        .with_message_id(self.fresh_id())
        .with_from(EndpointReference::new(self.endpoint.clone()));
        self.log(ctx.now(), format!("unsubscribe topic={topic}"));
        self.transmit(Envelope::request(headers, body), ctx);
    }

    /// Initiator: activate a gossip coordination context for `topic`.
    pub fn activate(&mut self, protocol: GossipProtocol, topic: &str, ctx: &mut dyn Context<String>) {
        assert_eq!(self.role, Role::Initiator, "only initiators activate");
        let mut body = ActivationService::encode_request(protocol);
        body.push_child(Element::in_ns("wsg", WSGOSSIP_NS, "Topic").with_text(topic.to_string()));
        let headers = MessageHeaders::request(
            endpoint_of(self.coordinator),
            actions::create_context(),
        )
        .with_message_id(self.fresh_id())
        .with_from(EndpointReference::new(self.endpoint.clone()))
        .with_reply_to(EndpointReference::new(self.endpoint.clone()));
        self.init.activating.push(topic.to_string());
        self.log(ctx.now(), format!("activate protocol={protocol:?} topic={topic}"));
        self.transmit(Envelope::request(headers, body), ctx);
    }

    /// Initiator: publish `payload` on `topic` — the "single notification"
    /// of paper §3. Queues until activation completes.
    pub fn notify(&mut self, topic: &str, payload: Element, ctx: &mut dyn Context<String>) {
        assert_eq!(self.role, Role::Initiator, "only initiators notify");
        if self.init.contexts.contains_key(topic) {
            self.do_notify(topic.to_string(), payload, ctx);
        } else {
            assert!(
                self.init.activating.iter().any(|t| t == topic),
                "notify on topic '{topic}' with no activation requested"
            );
            self.init.pending.push((topic.to_string(), payload));
        }
    }

    fn do_notify(&mut self, topic: String, payload: Element, ctx: &mut dyn Context<String>) {
        let context = self.init.contexts.get(&topic).expect("context ready").clone();
        let seq = self.init.next_seq;
        self.init.next_seq += 1;
        let gossip = GossipHeader {
            context_id: context.identifier().to_string(),
            topic: topic.clone(),
            origin: self.endpoint.clone(),
            seq,
            round: 0,
        };
        let headers = MessageHeaders::request(topic_uri(&topic), actions::notify())
            .with_message_id(self.fresh_id())
            .with_from(EndpointReference::new(self.endpoint.clone()));
        let envelope = Envelope::request(headers, payload)
            .with_header(context.to_header())
            .with_header(gossip.to_element());
        self.log(ctx.now(), format!("notify topic={topic} seq={seq}"));
        // The outbound middleware stack intercepts and re-routes.
        let result = self.chain.process(Direction::Outbound, envelope, self.endpoint.clone());
        for send in result.sends {
            self.transmit(send, ctx);
        }
    }

    // ----- internals -----

    fn send_coordinator_sync(&mut self, ctx: &mut dyn Context<String>) {
        let Some(coord) = &self.coord else { return };
        if coord.peers.is_empty() {
            return;
        }
        let snapshot = CoordinatorSync {
            subscriptions: coord.subscriptions.snapshot(),
            registrations: coord.registration.snapshot(),
            contexts: coord
                .activation
                .snapshot()
                .into_iter()
                .map(|c| {
                    let topic = coord
                        .topics
                        .get(c.identifier())
                        .cloned()
                        .unwrap_or_default();
                    (c, topic)
                })
                .collect(),
        };
        let peer = *self.rng.choose(&coord.peers).expect("non-empty");
        let headers = MessageHeaders::request(endpoint_of(peer), actions::coordinator_sync())
            .with_message_id(self.fresh_id())
            .with_from(EndpointReference::new(self.endpoint.clone()));
        self.transmit(Envelope::request(headers, snapshot.to_element()), ctx);
    }

    fn handle_coordinator_sync(&mut self, envelope: Envelope, ctx: &mut dyn Context<String>) {
        self.stats.sync_received += 1;
        let now = ctx.now();
        let Some(body) = envelope.body() else { return };
        let Ok(sync) = CoordinatorSync::from_element(body) else {
            self.stats.faults += 1;
            return;
        };
        let Some(coord) = &mut self.coord else { return };
        let mut merged = 0usize;
        for (topic, endpoint, expires) in &sync.subscriptions {
            if coord.subscriptions.merge_subscription(topic, endpoint.clone(), *expires) {
                merged += 1;
            }
        }
        for (context_id, participant) in &sync.registrations {
            if coord.registration.register(context_id, participant.clone()) {
                merged += 1;
            }
        }
        for (context, topic) in &sync.contexts {
            coord.activation.adopt(context.clone(), now);
            coord.topics.entry(context.identifier().to_string()).or_insert_with(|| topic.clone());
        }
        if merged > 0 {
            self.log(now, format!("coordinator sync merged {merged} entries"));
        }
    }

    fn transmit(&mut self, envelope: Envelope, ctx: &mut dyn Context<String>) {
        let Some(to) = envelope.addressing().to().and_then(node_of) else {
            self.stats.unroutable += 1;
            return;
        };
        // Serialise into the node's scratch buffer; only the final
        // wire-sized copy for the network allocates.
        envelope.write_xml(&mut self.scratch);
        ctx.send(to, self.scratch.clone());
    }

    fn reply_headers(&mut self, request: &Envelope, action: String) -> Option<MessageHeaders> {
        let to = request
            .addressing()
            .reply_to()
            .map(|epr| epr.address().to_string())
            .or_else(|| request.addressing().from().map(|epr| epr.address().to_string()))?;
        let mut headers = MessageHeaders::request(to, action)
            .with_message_id(self.fresh_id())
            .with_from(EndpointReference::new(self.endpoint.clone()));
        if let Some(id) = request.addressing().message_id() {
            headers = headers.with_relates_to(id.to_string());
        }
        Some(headers)
    }

    fn dispatch(&mut self, envelope: Envelope, ctx: &mut dyn Context<String>) {
        if let Some(fault) = envelope.as_fault() {
            self.stats.faults += 1;
            let code = fault.code();
            self.log(ctx.now(), format!("fault received: {code}"));
            return;
        }
        let action = envelope.addressing().action().unwrap_or("").to_string();
        match action.as_str() {
            a if a == actions::create_context() => self.handle_create_context(envelope, ctx),
            a if a == actions::register() => self.handle_register(envelope, ctx),
            a if a == actions::subscribe() => self.handle_subscribe(envelope, ctx),
            a if a == actions::unsubscribe() => self.handle_unsubscribe(envelope, ctx),
            a if a == actions::create_context_response() => {
                self.handle_context_response(envelope, ctx)
            }
            a if a == actions::subscribe_response() => {
                self.log(ctx.now(), "subscription acknowledged".to_string());
            }
            a if a == actions::notify() => self.handle_notify(envelope, ctx),
            a if a == actions::coordinator_sync() => self.handle_coordinator_sync(envelope, ctx),
            _ => {
                // Unknown action: a fault back to the sender would be the
                // full WS behaviour; counting suffices for the experiments.
                self.stats.unroutable += 1;
            }
        }
    }

    fn handle_create_context(&mut self, envelope: Envelope, ctx: &mut dyn Context<String>) {
        let now = ctx.now();
        let Some(body) = envelope.body() else { return };
        let Ok(protocol) = ActivationService::decode_request(body) else {
            self.stats.faults += 1;
            return;
        };
        let topic = body
            .child_ns(WSGOSSIP_NS, "Topic")
            .map(|t| t.text())
            .unwrap_or_else(|| "default".to_string());
        let requester = envelope
            .addressing()
            .from()
            .map(|epr| epr.address().to_string())
            .unwrap_or_default();

        let Some(coord) = &mut self.coord else { return };
        coord.protocol = protocol;
        let subscriber_count = coord.subscriptions.subscriber_count(&topic, now.as_millis());
        let policy = coord
            .policy
            .clone()
            .unwrap_or_else(|| GossipPolicy::atomic_for(subscriber_count.max(2)));
        let context = coord.activation.create_context(protocol, policy.clone(), now);
        coord.topics.insert(context.identifier().to_string(), topic.clone());
        coord.registration.register(context.identifier(), requester.clone());

        // Initial grant: the current subscribers, minus dead members.
        let mut peers = coord.subscriptions.subscribers(&topic, now.as_millis());
        peers.retain(|p| p != &requester);
        let liveness = Arc::clone(&self.liveness);
        peers.retain(|p| node_of(p).is_none_or(|id| liveness.is_live(id)));
        let grant = wsg_coord::GossipGrant {
            fanout: policy.params().fanout(),
            rounds: policy.params().rounds(),
            peers,
        };

        let mut body = ActivationService::encode_response(&context);
        body.push_child(grant.to_element());
        body.push_child(
            Element::in_ns("wsg", WSGOSSIP_NS, "Topic").with_text(topic.clone()),
        );
        self.log(now, format!(
            "created context {} (topic={topic}, subscribers={subscriber_count})",
            context.identifier()
        ));
        if let Some(headers) = self.reply_headers(&envelope, actions::create_context_response()) {
            self.transmit(Envelope::request(headers, body), ctx);
        }
    }

    fn handle_register(&mut self, envelope: Envelope, ctx: &mut dyn Context<String>) {
        let now = ctx.now();
        let Some(body) = envelope.body() else { return };
        let Ok((context_id, participant)) = RegistrationService::decode_register(body) else {
            self.stats.faults += 1;
            return;
        };
        let liveness = Arc::clone(&self.liveness);
        let Some(coord) = &mut self.coord else { return };
        coord.registration.register(&context_id, participant.clone());
        let Ok(context) = coord.activation.lookup(&context_id, now) else {
            self.stats.faults += 1;
            return;
        };
        let params = context.policy().params().clone();
        let topic = coord.topics.get(&context_id).cloned().unwrap_or_default();
        // Peers: union of subscribers and registered participants, minus
        // members the liveness oracle reports dead.
        let mut peers = coord.subscriptions.subscribers(&topic, now.as_millis());
        for p in coord.registration.participants(&context_id) {
            if !peers.contains(p) {
                peers.push(p.clone());
            }
        }
        peers.retain(|p| p != &participant);
        peers.retain(|p| node_of(p).is_none_or(|id| liveness.is_live(id)));
        let grant = wsg_coord::GossipGrant {
            fanout: params.fanout(),
            rounds: params.rounds(),
            peers,
        };
        let mut body = grant.to_register_response();
        body.push_child(
            Element::in_ns("wsg", WSGOSSIP_NS, "ContextIdentifier").with_text(context_id.clone()),
        );
        self.log(now, format!("registered {participant} in {context_id}"));
        if let Some(headers) = self.reply_headers(&envelope, actions::register_response()) {
            self.transmit(Envelope::request(headers, body), ctx);
        }
    }

    fn handle_subscribe(&mut self, envelope: Envelope, ctx: &mut dyn Context<String>) {
        let now = ctx.now();
        let Some(body) = envelope.body() else { return };
        let Ok((topic, endpoint, expires)) = SubscriptionList::decode_subscribe(body) else {
            self.stats.faults += 1;
            return;
        };
        let Some(coord) = &mut self.coord else { return };
        coord.subscriptions.subscribe(&topic, endpoint.clone(), expires);
        self.log(now, format!("subscription {endpoint} -> {topic}"));
        // The coordinator "knows the entire list of subscribers" and
        // provides "peers for each gossip round" (§3): push refreshed
        // grants so new subscribers become gossip targets immediately.
        // The subscription key may be a wildcard filter covering several
        // active interactions' concrete topics.
        let affected: Vec<String> = self
            .coord
            .as_ref()
            .map(|coord| {
                let mut topics: Vec<String> = coord
                    .topics
                    .values()
                    .filter(|t| wsg_coord::topics::covers(&topic, t))
                    .cloned()
                    .collect();
                topics.sort();
                topics.dedup();
                topics
            })
            .unwrap_or_default();
        for concrete in affected {
            self.push_grant_updates(&concrete, ctx);
        }
        let ack = Element::in_ns("wsg", WSGOSSIP_NS, "SubscribeResponse");
        if let Some(headers) = self.reply_headers(&envelope, actions::subscribe_response()) {
            self.transmit(Envelope::request(headers, ack), ctx);
        }
    }

    fn handle_unsubscribe(&mut self, envelope: Envelope, ctx: &mut dyn Context<String>) {
        let now = ctx.now();
        let Some(body) = envelope.body() else { return };
        let Ok((topic, endpoint)) = SubscriptionList::decode_unsubscribe(body) else {
            self.stats.faults += 1;
            return;
        };
        let Some(coord) = &mut self.coord else { return };
        coord.subscriptions.unsubscribe(&topic, &endpoint);
        // The endpoint may also be a registered gossip participant; remove
        // it from every context of this topic so grants stop naming it.
        let contexts: Vec<String> = coord
            .topics
            .iter()
            .filter(|(_, t)| **t == topic)
            .map(|(ctx_id, _)| ctx_id.clone())
            .collect();
        for context_id in &contexts {
            coord.registration.deregister(context_id, &endpoint);
        }
        self.log(now, format!("unsubscribed {endpoint} from {topic}"));
        self.push_grant_updates(&topic, ctx);
    }

    /// Push refreshed grants for every context of `topic` to its current
    /// participants (subscription list changed).
    fn push_grant_updates(&mut self, topic: &str, ctx: &mut dyn Context<String>) {
        let now = ctx.now();
        let mut updates: Vec<(String, Element)> = Vec::new();
        {
            let Some(coord) = &self.coord else { return };
            let contexts: Vec<String> = coord
                .topics
                .iter()
                .filter(|(_, t)| t.as_str() == topic)
                .map(|(ctx_id, _)| ctx_id.clone())
                .collect();
            for context_id in contexts {
                let Ok(context) = coord.activation.lookup(&context_id, now) else { continue };
                let params = context.policy().params().clone();
                let subscribers = coord.subscriptions.subscribers(topic, now.as_millis());
                for participant in coord.registration.participants(&context_id).to_vec() {
                    let mut peers = subscribers.clone();
                    for p in coord.registration.participants(&context_id) {
                        if !peers.contains(p) {
                            peers.push(p.clone());
                        }
                    }
                    peers.retain(|p| p != &participant);
                    peers.retain(|p| self.live_peer(p));
                    let grant = wsg_coord::GossipGrant {
                        fanout: params.fanout(),
                        rounds: params.rounds(),
                        peers,
                    };
                    let mut body = grant.to_register_response();
                    body.push_child(
                        Element::in_ns("wsg", WSGOSSIP_NS, "ContextIdentifier")
                            .with_text(context_id.clone()),
                    );
                    updates.push((participant, body));
                }
            }
        }
        for (participant, body) in updates {
            let headers = MessageHeaders::request(participant, actions::register_response())
                .with_message_id(self.fresh_id())
                .with_from(EndpointReference::new(self.endpoint.clone()));
            self.transmit(Envelope::request(headers, body), ctx);
        }
    }

    fn handle_context_response(&mut self, envelope: Envelope, ctx: &mut dyn Context<String>) {
        let now = ctx.now();
        let Some(body) = envelope.body() else { return };
        let Ok(context) = ActivationService::decode_response(body) else {
            self.stats.faults += 1;
            return;
        };
        let topic = body
            .child_ns(WSGOSSIP_NS, "Topic")
            .map(|t| t.text())
            .unwrap_or_else(|| "default".to_string());
        if let Ok(grant) = wsg_coord::GossipGrant::from_parent(body) {
            if let Some(layer) = &self.layer {
                layer.set_grant(context.identifier(), grant);
            }
        }
        self.log(now, format!("context ready {} (topic={topic})", context.identifier()));
        self.init.contexts.insert(topic.clone(), context);
        self.init.activating.retain(|t| t != &topic);
        // Flush notifications that were waiting for this topic.
        let ready: Vec<(String, Element)> = {
            let (flush, keep): (Vec<_>, Vec<_>) = self
                .init
                .pending
                .drain(..)
                .partition(|(t, _)| *t == topic);
            self.init.pending = keep;
            flush
        };
        for (topic, payload) in ready {
            self.do_notify(topic, payload, ctx);
        }
    }

    fn handle_notify(&mut self, envelope: Envelope, ctx: &mut dyn Context<String>) {
        let now = ctx.now();
        let header = GossipHeader::from_envelope(&envelope);
        let payload = envelope.body().cloned().unwrap_or_else(|| Element::new("empty"));
        let op = match header {
            Some(h) => DeliveredOp {
                topic: h.topic,
                origin: h.origin,
                seq: h.seq,
                round: h.round,
                at: now,
                payload,
            },
            None => DeliveredOp {
                topic: "?".into(),
                origin: envelope
                    .addressing()
                    .from()
                    .map(|epr| epr.address().to_string())
                    .unwrap_or_else(|| "?".into()),
                seq: 0,
                round: 0,
                at: now,
                payload,
            },
        };
        match &mut self.fifo {
            Some(fifo) => {
                // FIFO ordering keys on the gossip origin; map the origin
                // endpoint to its node id (synthetic endpoints are
                // bijective).
                let origin = node_of(&op.origin).unwrap_or(NodeId(usize::MAX - 1));
                let released =
                    fifo.accept(wsg_gossip::MsgId::new(origin, op.seq), op);
                for (_, op) in released {
                    self.stats.ops_delivered += 1;
                    self.log(now, format!(
                        "op delivered topic={} origin={} seq={} round={} (fifo)",
                        op.topic, op.origin, op.seq, op.round
                    ));
                    self.ops.push(op);
                }
            }
            None => {
                self.stats.ops_delivered += 1;
                self.log(now, format!(
                    "op delivered topic={} origin={} seq={} round={}",
                    op.topic, op.origin, op.seq, op.round
                ));
                self.ops.push(op);
            }
        }
    }
}

impl Protocol for WsGossipNode {
    type Message = String;

    fn on_start(&mut self, ctx: &mut dyn Context<Self::Message>) {
        if self.coord.as_ref().is_some_and(|c| !c.peers.is_empty()) {
            ctx.set_timer(COORD_SYNC_INTERVAL, COORD_SYNC_TICK);
        }
        for topic in self.drive.subscribe.clone() {
            self.subscribe(&topic, ctx);
        }
        if let Some((topic, _, interval)) = self.drive.publish.clone() {
            self.activate(GossipProtocol::Push, &topic, ctx);
            ctx.set_timer(interval, PUBLISH_TICK);
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut dyn Context<Self::Message>) {
        if tag == RENEW_TICK {
            if let Some(ttl) = self.drive.subscription_ttl {
                for topic in self.drive.subscribed_topics.clone() {
                    let expiry = (ctx.now() + ttl).as_millis();
                    let body =
                        SubscriptionList::encode_subscribe(&topic, &self.endpoint, expiry);
                    let headers = MessageHeaders::request(
                        endpoint_of(self.coordinator),
                        actions::subscribe(),
                    )
                    .with_message_id(self.fresh_id())
                    .with_from(EndpointReference::new(self.endpoint.clone()));
                    self.transmit(Envelope::request(headers, body), ctx);
                }
                ctx.set_timer(SimDuration::from_micros(ttl.as_micros() / 2), RENEW_TICK);
            }
            return;
        }
        if tag == PUBLISH_TICK {
            if let Some((topic, payloads, interval)) = self.drive.publish.clone() {
                if let Some(payload) = payloads.get(self.drive.published).cloned() {
                    self.drive.published += 1;
                    self.notify(&topic, payload, ctx);
                    if self.drive.published < payloads.len() {
                        ctx.set_timer(interval, PUBLISH_TICK);
                    }
                }
            }
            return;
        }
        if tag != COORD_SYNC_TICK {
            return;
        }
        // Housekeeping: drop expired subscriptions and contexts, then
        // gossip the fresh snapshot to one random peer coordinator.
        let now = ctx.now();
        if let Some(coord) = &mut self.coord {
            coord.subscriptions.expire(now.as_millis());
            coord.activation.expire(now);
        }
        self.send_coordinator_sync(ctx);
        ctx.set_timer(COORD_SYNC_INTERVAL, COORD_SYNC_TICK);
    }

    fn on_message(&mut self, _from: NodeId, xml: String, ctx: &mut dyn Context<String>) {
        self.stats.messages_received += 1;
        let envelope = match Envelope::parse(&xml) {
            Ok(env) => env,
            Err(_) => {
                self.stats.parse_errors += 1;
                return;
            }
        };
        let result = self
            .chain
            .process(Direction::Inbound, envelope, self.endpoint.clone());
        for send in result.sends {
            self.transmit(send, ctx);
        }
        match result.disposition {
            Disposition::Deliver(envelope) => self.dispatch(envelope, ctx),
            Disposition::Consumed => {}
            Disposition::Faulted(_) => self.stats.faults += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_have_expected_stacks() {
        let coordinator = WsGossipNode::coordinator(NodeId(0));
        let initiator = WsGossipNode::initiator(NodeId(1), NodeId(0));
        let disseminator = WsGossipNode::disseminator(NodeId(2), NodeId(0));
        let consumer = WsGossipNode::consumer(NodeId(3), NodeId(0));
        assert!(coordinator.layer_stats().is_none());
        assert!(initiator.layer_stats().is_some());
        assert!(disseminator.layer_stats().is_some());
        assert!(consumer.layer_stats().is_none(), "consumers are unchanged");
        assert_eq!(consumer.role(), Role::Consumer);
    }

    #[test]
    #[should_panic(expected = "only initiators")]
    fn consumers_cannot_notify() {
        use wsg_net::sim::{SimConfig, SimNet};
        let mut net = SimNet::new(SimConfig::default());
        let id = net.add_node(WsGossipNode::consumer(NodeId(0), NodeId(0)));
        net.invoke(id, |node, ctx| {
            node.notify("t", Element::new("x"), ctx);
        });
    }

    #[test]
    fn distinct_ops_deduplicates() {
        let mut node = WsGossipNode::consumer(NodeId(1), NodeId(0));
        for round in [1u32, 2, 3] {
            node.ops.push(DeliveredOp {
                topic: "t".into(),
                origin: "http://node2/gossip".into(),
                seq: 0,
                round,
                at: SimTime::ZERO,
                payload: Element::new("x"),
            });
        }
        assert_eq!(node.ops().len(), 3);
        assert_eq!(node.distinct_ops().len(), 1);
    }

    #[test]
    fn export_metrics_matches_the_node_role() {
        let coordinator = WsGossipNode::coordinator(NodeId(0));
        let registry = wsg_obs::Registry::new();
        coordinator.export_metrics(&registry, SimTime::ZERO);
        let text = registry.render();
        assert!(text.contains("wsg_node_messages_received_total 0"), "{text}");
        assert!(text.contains("wsg_coord_contexts_created_total 0"), "{text}");
        assert!(!text.contains("wsg_layer_"), "coordinator has no gossip layer");

        let mut disseminator = WsGossipNode::disseminator(NodeId(2), NodeId(0));
        disseminator.stats.ops_delivered = 4;
        let registry = wsg_obs::Registry::new();
        disseminator.export_metrics(&registry, SimTime::ZERO);
        let text = registry.render();
        assert!(text.contains("wsg_node_ops_delivered_total 4"), "{text}");
        assert!(text.contains("wsg_layer_intercepted_total 0"), "{text}");
        assert!(!text.contains("wsg_coord_"), "disseminator hosts no coordinator");
    }

    #[test]
    fn reexporting_metrics_is_idempotent() {
        let mut node = WsGossipNode::consumer(NodeId(1), NodeId(0));
        let registry = wsg_obs::Registry::new();
        node.export_metrics(&registry, SimTime::ZERO);
        let before = registry.render();
        node.export_metrics(&registry, SimTime::ZERO);
        assert_eq!(before, registry.render(), "same state renders identically");
        node.stats.messages_received = 7;
        node.export_metrics(&registry, SimTime::ZERO);
        assert!(registry.render().contains("wsg_node_messages_received_total 7"));
    }
}
