//! The gossip layer: the handler in the middleware stack.
//!
//! Paper §3: adopting WS-PushGossip at a Disseminator "will require
//! configuring an additional handler, the gossip layer, in the middleware
//! stack, which intercepts the outgoing message and re-routes it to
//! selected destinations" and "upon arrival … if this is an unknown gossip
//! interaction, it registers itself with the Registration service, thus
//! obtaining gossip targets to which it will forward the message."
//!
//! [`GossipHandler`] implements exactly that as a [`wsg_soap::Handler`]:
//!
//! * **outbound** messages carrying a `wsg:Gossip` header are intercepted;
//!   copies are re-routed to `fanout` peers from the current grant;
//! * **inbound** gossip messages are deduplicated, delivered to the
//!   application (`Continue`), and forwarded another round;
//! * the first message of an unknown interaction triggers a `Register`
//!   call to the context's Registration service; messages queue until the
//!   `RegisterResponse` grant arrives.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use wsg_coord::{CoordinationContext, GossipGrant, RegistrationService, WSCOOR_NS, WSGOSSIP_NS};
use wsg_net::sync::Mutex;
use wsg_net::{AllLive, Pcg32, PeerLiveness, RngExt};
use wsg_soap::{
    Envelope, EndpointReference, Handler, HandlerOutcome, MessageContext, MessageHeaders, Uuid,
};
use wsg_xml::QName;

use crate::actions;
use crate::header::GossipHeader;

/// Counters exposed by the gossip layer (experiment E1/E7 bookkeeping).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GossipLayerStats {
    /// Outgoing notifications intercepted at the origin.
    pub intercepted: u64,
    /// Forward copies re-routed to peers.
    pub forwards_sent: u64,
    /// `Register` calls issued for unknown interactions.
    pub registers_sent: u64,
    /// Inbound copies suppressed as duplicates.
    pub duplicates_suppressed: u64,
}

#[derive(Debug)]
struct LayerState {
    me: String,
    rng: Pcg32,
    seen: BTreeSet<(String, u64)>,
    seen_order: VecDeque<(String, u64)>,
    seen_cap: usize,
    grants: BTreeMap<String, GossipGrant>,
    pending: BTreeMap<String, Vec<Envelope>>,
    registering: BTreeSet<String>,
    // Liveness oracle consulted when sampling forward targets; grants can
    // outlive their peers, so dead members are filtered out per round
    // instead of waiting for the coordinator to re-issue the grant.
    liveness: Arc<dyn PeerLiveness>,
    stats: GossipLayerStats,
}

impl LayerState {
    fn fresh_message_id(&mut self) -> String {
        Uuid::random(&mut self.rng).to_urn()
    }

    /// Record a message key in the dedup set, evicting the oldest entries
    /// beyond the configured cap. Returns `true` when the key was new.
    fn mark_seen(&mut self, key: (String, u64)) -> bool {
        if !self.seen.insert(key.clone()) {
            return false;
        }
        self.seen_order.push_back(key);
        while self.seen_order.len() > self.seen_cap {
            if let Some(evicted) = self.seen_order.pop_front() {
                self.seen.remove(&evicted);
            }
        }
        true
    }

    fn sample_peers(&mut self, grant: &GossipGrant) -> Vec<String> {
        let mut pool: Vec<String> = grant
            .peers
            .iter()
            .filter(|p| p.as_str() != self.me)
            .filter(|p| {
                // Endpoints that don't map to a node id (external URIs)
                // are not the liveness plane's to veto.
                crate::endpoint::node_of(p).is_none_or(|id| self.liveness.is_live(id))
            })
            .cloned()
            .collect();
        self.rng.shuffle(&mut pool);
        pool.truncate(grant.fanout);
        pool
    }
}

/// Shared handle onto the gossip layer: the node keeps one clone (to seed
/// grants and read statistics), the handler in the chain keeps the other.
#[derive(Debug, Clone)]
pub struct GossipLayerHandle {
    state: Arc<Mutex<LayerState>>,
}

impl GossipLayerHandle {
    /// A new layer for the node with endpoint `me`; `seed` fixes the
    /// deterministic peer-sampling stream.
    pub fn new(me: impl Into<String>, seed: u64) -> Self {
        GossipLayerHandle {
            state: Arc::new(Mutex::new(LayerState {
                me: me.into(),
                rng: Pcg32::new(seed, 0x60551),
                seen: BTreeSet::new(),
                seen_order: VecDeque::new(),
                seen_cap: usize::MAX,
                grants: BTreeMap::new(),
                pending: BTreeMap::new(),
                registering: BTreeSet::new(),
                liveness: Arc::new(AllLive),
                stats: GossipLayerStats::default(),
            })),
        }
    }

    /// Install a liveness oracle (e.g. a `wsg_cluster` membership plane):
    /// per-round peer sampling skips members it reports dead, so gossip
    /// stops dialing crashed nodes even while grants still name them.
    pub fn set_liveness(&self, liveness: Arc<dyn PeerLiveness>) {
        self.state.lock().liveness = liveness;
    }

    /// Build the chain handler sharing this state.
    pub fn handler(&self) -> GossipHandler {
        GossipHandler { state: self.state.clone() }
    }

    /// Bound the duplicate-suppression memory to the most recent `cap`
    /// message keys (FIFO eviction). Unbounded by default; long-running
    /// deployments should set a cap and accept that a message older than
    /// the window could, in principle, be re-delivered.
    pub fn set_seen_cap(&self, cap: usize) {
        assert!(cap > 0, "seen cap must be positive");
        self.state.lock().seen_cap = cap;
    }

    /// Install a grant (e.g. the one returned by Activation) — present
    /// interactions forward immediately instead of registering first.
    pub fn set_grant(&self, context_id: &str, grant: GossipGrant) {
        self.state.lock().grants.insert(context_id.to_string(), grant);
    }

    /// The grant for a context, if known.
    pub fn grant(&self, context_id: &str) -> Option<GossipGrant> {
        self.state.lock().grants.get(context_id).cloned()
    }

    /// Layer counters.
    pub fn stats(&self) -> GossipLayerStats {
        self.state.lock().stats.clone()
    }

    /// Number of distinct messages seen.
    pub fn seen_count(&self) -> usize {
        self.state.lock().seen.len()
    }
}

/// The middleware handler; see the [module documentation](self).
#[derive(Debug)]
pub struct GossipHandler {
    state: Arc<Mutex<LayerState>>,
}

impl GossipHandler {
    /// Build the forward copies of `envelope` for the next round and queue
    /// them on the message context.
    fn forward(
        state: &mut LayerState,
        ctx: &mut MessageContext,
        envelope: &Envelope,
        header: &GossipHeader,
        grant: &GossipGrant,
    ) {
        if header.round >= grant.rounds {
            return; // round budget exhausted
        }
        let next = header.next_round();
        for peer in state.sample_peers(grant) {
            let mut copy = envelope.clone();
            copy.take_header(WSGOSSIP_NS, "Gossip");
            copy.push_header(next.to_element());
            let message_id = state.fresh_message_id();
            let addressing = copy.addressing_mut();
            addressing.set_to(peer);
            addressing.set_message_id(message_id);
            addressing.set_from(EndpointReference::new(state.me.clone()));
            state.stats.forwards_sent += 1;
            ctx.send_envelope(copy);
        }
    }

    /// Queue `envelope` until a grant arrives, registering with the
    /// context's Registration service if we have not yet.
    fn queue_and_register(
        state: &mut LayerState,
        ctx: &mut MessageContext,
        envelope: &Envelope,
        header: &GossipHeader,
    ) {
        state
            .pending
            .entry(header.context_id.clone())
            .or_default()
            .push(envelope.clone());
        if !state.registering.insert(header.context_id.clone()) {
            return; // register already in flight
        }
        // The registration address travels in the CoordinationContext
        // header of the message itself.
        let registration = envelope
            .header(WSCOOR_NS, "CoordinationContext")
            .and_then(|h| CoordinationContext::from_header(h).ok())
            .map(|c| c.registration_service().to_string());
        let Some(registration) = registration else {
            return; // no context header: nothing we can do
        };
        let me = state.me.clone();
        let body = RegistrationService::encode_register(&header.context_id, &me);
        let headers = MessageHeaders::request(registration, actions::register())
            .with_message_id(state.fresh_message_id())
            .with_from(EndpointReference::new(me))
            .with_reply_to(EndpointReference::new(state.me.clone()));
        state.stats.registers_sent += 1;
        ctx.send_envelope(Envelope::request(headers, body));
    }

    fn handle_register_response(&self, ctx: &mut MessageContext) -> HandlerOutcome {
        let mut state = self.state.lock();
        let Some(body) = ctx.envelope.body() else {
            return HandlerOutcome::Consumed;
        };
        let Ok(grant) = GossipGrant::from_parent(body) else {
            return HandlerOutcome::Consumed;
        };
        let Some(context_id) = body
            .child_ns(WSGOSSIP_NS, "ContextIdentifier")
            .map(|c| c.text())
        else {
            return HandlerOutcome::Consumed;
        };
        state.grants.insert(context_id.clone(), grant.clone());
        state.registering.remove(&context_id);
        let queued = state.pending.remove(&context_id).unwrap_or_default();
        for envelope in queued {
            if let Some(header) = GossipHeader::from_envelope(&envelope) {
                Self::forward(&mut state, ctx, &envelope, &header, &grant);
            }
        }
        HandlerOutcome::Consumed
    }
}

impl Handler for GossipHandler {
    fn name(&self) -> &str {
        "gossip"
    }

    fn understands(&self, header: &QName) -> bool {
        header.matches(Some(WSGOSSIP_NS), "Gossip")
            || header.matches(Some(WSCOOR_NS), "CoordinationContext")
    }

    fn process(&mut self, ctx: &mut MessageContext) -> HandlerOutcome {
        use wsg_soap::handler::Direction;

        // Grant arrivals are middleware-level traffic.
        if ctx.direction == Direction::Inbound
            && ctx.envelope.addressing().action() == Some(actions::register_response().as_str())
        {
            return self.handle_register_response(ctx);
        }

        let Some(header) = GossipHeader::from_envelope(&ctx.envelope) else {
            return HandlerOutcome::Continue; // not gossip traffic
        };

        match ctx.direction {
            Direction::Outbound => {
                // Interception at the origin: never let the original (which
                // is addressed to a topic URI, not a node) hit the wire.
                let mut state = self.state.lock();
                state.stats.intercepted += 1;
                state.mark_seen(header.key());
                let envelope = ctx.envelope.clone();
                match state.grants.get(&header.context_id).cloned() {
                    Some(grant) => Self::forward(&mut state, ctx, &envelope, &header, &grant),
                    None => Self::queue_and_register(&mut state, ctx, &envelope, &header),
                }
                HandlerOutcome::Consumed
            }
            Direction::Inbound => {
                let mut state = self.state.lock();
                if !state.mark_seen(header.key()) {
                    state.stats.duplicates_suppressed += 1;
                    return HandlerOutcome::Consumed;
                }
                let envelope = ctx.envelope.clone();
                match state.grants.get(&header.context_id).cloned() {
                    Some(grant) => Self::forward(&mut state, ctx, &envelope, &header, &grant),
                    None => Self::queue_and_register(&mut state, ctx, &envelope, &header),
                }
                drop(state);
                HandlerOutcome::Continue // deliver to the application too
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_coord::{GossipPolicy, GossipProtocol};
    use wsg_soap::handler::{Direction, Disposition};
    use wsg_soap::HandlerChain;
    use wsg_xml::Element;

    fn notification(ctx_id: &str, origin: &str, seq: u64, round: u32) -> Envelope {
        let context = CoordinationContext::new(
            ctx_id,
            GossipProtocol::Push,
            "http://node0/registration",
            GossipPolicy::default(),
        );
        let gossip = GossipHeader {
            context_id: ctx_id.to_string(),
            topic: "quotes".into(),
            origin: origin.to_string(),
            seq,
            round,
        };
        Envelope::request(
            MessageHeaders::request(crate::endpoint::topic_uri("quotes"), actions::notify())
                .with_message_id("urn:uuid:test-1"),
            Element::text_node("tick", "ACME"),
        )
        .with_header(context.to_header())
        .with_header(gossip.to_element())
    }

    fn grant(peers: &[&str]) -> GossipGrant {
        GossipGrant {
            fanout: 2,
            rounds: 4,
            peers: peers.iter().map(|p| p.to_string()).collect(),
        }
    }

    fn chain_with(handle: &GossipLayerHandle) -> HandlerChain {
        let mut chain = HandlerChain::new();
        chain.push(Box::new(handle.handler()));
        chain
    }

    #[test]
    fn outbound_with_grant_reroutes_to_fanout_peers() {
        let handle = GossipLayerHandle::new("http://node1/gossip", 1);
        handle.set_grant("ctx", grant(&["http://node2/gossip", "http://node3/gossip", "http://node4/gossip"]));
        let mut chain = chain_with(&handle);
        let result = chain.process(
            Direction::Outbound,
            notification("ctx", "http://node1/gossip", 0, 0),
            "http://node1/gossip",
        );
        assert!(matches!(result.disposition, Disposition::Consumed));
        assert_eq!(result.sends.len(), 2, "fanout 2");
        for copy in &result.sends {
            let header = GossipHeader::from_envelope(copy).unwrap();
            assert_eq!(header.round, 1);
            assert_ne!(copy.addressing().to(), Some("http://node1/gossip"));
            assert_eq!(copy.addressing().action(), Some(actions::notify().as_str()));
        }
        assert_eq!(handle.stats().intercepted, 1);
        assert_eq!(handle.stats().forwards_sent, 2);
    }

    #[test]
    fn outbound_without_grant_registers_and_queues() {
        let handle = GossipLayerHandle::new("http://node1/gossip", 2);
        let mut chain = chain_with(&handle);
        let result = chain.process(
            Direction::Outbound,
            notification("ctx", "http://node1/gossip", 0, 0),
            "http://node1/gossip",
        );
        assert!(matches!(result.disposition, Disposition::Consumed));
        assert_eq!(result.sends.len(), 1);
        let register = &result.sends[0];
        assert_eq!(register.addressing().action(), Some(actions::register().as_str()));
        assert_eq!(register.addressing().to(), Some("http://node0/registration"));
        assert_eq!(handle.stats().registers_sent, 1);
    }

    #[test]
    fn inbound_new_message_delivers_and_forwards() {
        let handle = GossipLayerHandle::new("http://node2/gossip", 3);
        handle.set_grant("ctx", grant(&["http://node3/gossip", "http://node4/gossip"]));
        let mut chain = chain_with(&handle);
        let result = chain.process(
            Direction::Inbound,
            notification("ctx", "http://node1/gossip", 0, 1),
            "http://node2/gossip",
        );
        assert!(matches!(result.disposition, Disposition::Deliver(_)), "app must see it");
        assert_eq!(result.sends.len(), 2);
        for copy in &result.sends {
            assert_eq!(GossipHeader::from_envelope(copy).unwrap().round, 2);
        }
    }

    #[test]
    fn inbound_duplicate_suppressed() {
        let handle = GossipLayerHandle::new("http://node2/gossip", 4);
        handle.set_grant("ctx", grant(&["http://node3/gossip"]));
        let mut chain = chain_with(&handle);
        let first = chain.process(
            Direction::Inbound,
            notification("ctx", "http://node1/gossip", 7, 1),
            "http://node2/gossip",
        );
        assert!(matches!(first.disposition, Disposition::Deliver(_)));
        let second = chain.process(
            Direction::Inbound,
            notification("ctx", "http://node1/gossip", 7, 2),
            "http://node2/gossip",
        );
        assert!(matches!(second.disposition, Disposition::Consumed));
        assert!(second.sends.is_empty(), "duplicates are not re-forwarded");
        assert_eq!(handle.stats().duplicates_suppressed, 1);
    }

    #[test]
    fn round_budget_stops_forwarding() {
        let handle = GossipLayerHandle::new("http://node2/gossip", 5);
        handle.set_grant("ctx", grant(&["http://node3/gossip"])); // rounds = 4
        let mut chain = chain_with(&handle);
        let result = chain.process(
            Direction::Inbound,
            notification("ctx", "http://node1/gossip", 0, 4),
            "http://node2/gossip",
        );
        assert!(matches!(result.disposition, Disposition::Deliver(_)), "still delivered");
        assert!(result.sends.is_empty(), "round 4 >= budget 4: no forward");
    }

    #[test]
    fn grant_arrival_flushes_pending() {
        let handle = GossipLayerHandle::new("http://node2/gossip", 6);
        let mut chain = chain_with(&handle);
        // An inbound message for an unknown interaction queues + registers.
        let first = chain.process(
            Direction::Inbound,
            notification("ctx", "http://node1/gossip", 0, 1),
            "http://node2/gossip",
        );
        assert_eq!(first.sends.len(), 1, "register only");
        // Now the RegisterResponse arrives.
        let mut body = grant(&["http://node5/gossip", "http://node6/gossip"]).to_register_response();
        body.push_child(
            Element::in_ns("wsg", WSGOSSIP_NS, "ContextIdentifier").with_text("ctx"),
        );
        let response = Envelope::request(
            MessageHeaders::request("http://node2/gossip", actions::register_response()),
            body,
        );
        let result = chain.process(Direction::Inbound, response, "http://node2/gossip");
        assert!(matches!(result.disposition, Disposition::Consumed));
        assert_eq!(result.sends.len(), 2, "queued message forwarded to 2 peers");
        assert!(handle.grant("ctx").is_some());
    }

    #[test]
    fn second_message_in_known_context_forwards_without_register() {
        let handle = GossipLayerHandle::new("http://node2/gossip", 7);
        handle.set_grant("ctx", grant(&["http://node3/gossip"]));
        let mut chain = chain_with(&handle);
        for seq in 0..3 {
            let result = chain.process(
                Direction::Inbound,
                notification("ctx", "http://node1/gossip", seq, 1),
                "http://node2/gossip",
            );
            assert_eq!(result.sends.len(), 1);
        }
        assert_eq!(handle.stats().registers_sent, 0);
    }

    #[test]
    fn non_gossip_traffic_passes_through() {
        let handle = GossipLayerHandle::new("http://node2/gossip", 8);
        let mut chain = chain_with(&handle);
        let plain = Envelope::request(
            MessageHeaders::request("http://node2/gossip", "urn:other:Op"),
            Element::new("op"),
        );
        let result = chain.process(Direction::Inbound, plain, "http://node2/gossip");
        assert!(matches!(result.disposition, Disposition::Deliver(_)));
        assert!(result.sends.is_empty());
    }

    #[test]
    fn seen_cap_bounds_memory_with_fifo_eviction() {
        let handle = GossipLayerHandle::new("http://node2/gossip", 10);
        handle.set_seen_cap(3);
        handle.set_grant("ctx", grant(&["http://node3/gossip"]));
        let mut chain = chain_with(&handle);
        for seq in 0..10 {
            chain.process(
                Direction::Inbound,
                notification("ctx", "http://node1/gossip", seq, 1),
                "http://node2/gossip",
            );
        }
        assert_eq!(handle.seen_count(), 3, "bounded at the cap");
        // A message inside the window is still deduplicated...
        let result = chain.process(
            Direction::Inbound,
            notification("ctx", "http://node1/gossip", 9, 2),
            "http://node2/gossip",
        );
        assert!(matches!(result.disposition, Disposition::Consumed));
        // ...one outside the window is (by design) re-admitted.
        let result = chain.process(
            Direction::Inbound,
            notification("ctx", "http://node1/gossip", 0, 2),
            "http://node2/gossip",
        );
        assert!(matches!(result.disposition, Disposition::Deliver(_)));
    }

    #[test]
    fn dead_peers_are_excluded_from_sampling() {
        #[derive(Debug)]
        struct DeadNode3;
        impl PeerLiveness for DeadNode3 {
            fn is_live(&self, peer: wsg_net::NodeId) -> bool {
                peer != wsg_net::NodeId(3)
            }
        }
        let handle = GossipLayerHandle::new("http://node1/gossip", 11);
        handle.set_liveness(Arc::new(DeadNode3));
        handle.set_grant(
            "ctx",
            GossipGrant {
                fanout: 5,
                rounds: 4,
                peers: vec![
                    "http://node2/gossip".into(),
                    "http://node3/gossip".into(),
                    "http://node4/gossip".into(),
                    "urn:external:endpoint".into(),
                ],
            },
        );
        let mut chain = chain_with(&handle);
        let result = chain.process(
            Direction::Outbound,
            notification("ctx", "http://node1/gossip", 0, 0),
            "http://node1/gossip",
        );
        // node3 is filtered; node2, node4 and the (unmapped, never vetoed)
        // external endpoint remain.
        assert_eq!(result.sends.len(), 3);
        for copy in &result.sends {
            assert_ne!(copy.addressing().to(), Some("http://node3/gossip"));
        }
    }

    #[test]
    fn forwards_never_target_self() {
        let handle = GossipLayerHandle::new("http://node2/gossip", 9);
        handle.set_grant(
            "ctx",
            GossipGrant {
                fanout: 5,
                rounds: 9,
                peers: vec!["http://node2/gossip".into(), "http://node3/gossip".into()],
            },
        );
        let mut chain = chain_with(&handle);
        let result = chain.process(
            Direction::Inbound,
            notification("ctx", "http://node1/gossip", 0, 1),
            "http://node2/gossip",
        );
        for copy in &result.sends {
            assert_ne!(copy.addressing().to(), Some("http://node2/gossip"));
        }
    }
}
