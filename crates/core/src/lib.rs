//! # ws-gossip — gossip-based service coordination middleware
//!
//! The paper's contribution, assembled from the substrate crates: a
//! middleware that lets SOAP services disseminate notifications
//! epidemically with minimal-to-no application changes.
//!
//! The four roles of §3 / Figure 1 are all instances of one
//! [`WsGossipNode`]:
//!
//! | Role | Construction | Change vs. a plain service |
//! |------|--------------|----------------------------|
//! | Coordinator | [`WsGossipNode::coordinator`] | hosts Activation + Registration + subscription list |
//! | Initiator | [`WsGossipNode::initiator`] | app code activates a context and issues ONE notification |
//! | Disseminator | [`WsGossipNode::disseminator`] | only a gossip handler added to the middleware stack |
//! | Consumer | [`WsGossipNode::consumer`] | completely unchanged |
//!
//! Nodes exchange **real serialized SOAP envelopes** (`String` XML on the
//! wire), parsed and pushed through a [`wsg_soap::HandlerChain`] on each
//! hop, so byte sizes and middleware behaviour are faithful to a WS-*
//! deployment. The gossip layer ([`layer::GossipHandler`]) intercepts
//! outgoing notifications and re-routes copies to peers obtained from the
//! WS-Coordination Registration service, exactly as Figure 1 describes.
//!
//! ## Quickstart
//!
//! ```
//! use ws_gossip::{WsGossipNode, scenario};
//! use wsg_net::{sim::{SimNet, SimConfig}, NodeId};
//! use wsg_xml::Element;
//!
//! // 1 coordinator, 1 initiator, 4 disseminators, 2 consumers.
//! let mut net = scenario::build_figure1_network(
//!     SimConfig::default().seed(7),
//!     scenario::Figure1Shape { disseminators: 4, consumers: 2 },
//! );
//! scenario::subscribe_all(&mut net, "quotes");
//! net.run_to_quiescence();
//! scenario::activate(&mut net, "quotes");
//! net.run_to_quiescence();
//! scenario::notify(&mut net, "quotes", Element::text_node("tick", "ACME 101.25"));
//! net.run_to_quiescence();
//!
//! // Every subscriber received the notification.
//! for id in net.node_ids().into_iter().skip(2) {
//!     assert!(net.node(id).distinct_ops().len() == 1, "{id} missed the op");
//! }
//! ```

pub mod actions;
pub mod endpoint;
pub mod header;
pub mod layer;
pub mod node;
pub mod scenario;

pub use header::GossipHeader;
pub use layer::{GossipHandler, GossipLayerStats};
pub use node::{DeliveredOp, NodeStats, Role, WsGossipNode};
