//! The `wsg:Gossip` SOAP header block.
//!
//! Travels with every disseminated notification. Carries the gossip
//! identity of the message — originating endpoint plus sequence number —
//! and the hop count (`round`). Deliberately **not** marked
//! `mustUnderstand`: a Consumer with no gossip layer must be able to
//! process the notification unchanged (paper §3, "completely unchanged and
//! unaffected").

use wsg_coord::WSGOSSIP_NS;
use wsg_xml::{Element, QName};

// Interned names for the header vocabulary: every disseminated message
// serialises these, so cloning them must not allocate.
static GOSSIP: QName = QName::interned(WSGOSSIP_NS, "wsg", "Gossip");
static CONTEXT: QName = QName::interned(WSGOSSIP_NS, "wsg", "Context");
static TOPIC: QName = QName::interned(WSGOSSIP_NS, "wsg", "Topic");
static ORIGIN: QName = QName::interned(WSGOSSIP_NS, "wsg", "Origin");
static SEQ: QName = QName::interned(WSGOSSIP_NS, "wsg", "Seq");
static ROUND: QName = QName::interned(WSGOSSIP_NS, "wsg", "Round");

/// The decoded `wsg:Gossip` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipHeader {
    /// Coordination-context identifier this message belongs to.
    pub context_id: String,
    /// Topic being disseminated.
    pub topic: String,
    /// Endpoint of the originating (Initiator) node.
    pub origin: String,
    /// Per-origin sequence number.
    pub seq: u64,
    /// Hop count: 0 as published, incremented at each forward.
    pub round: u32,
}

impl GossipHeader {
    /// The dedup key identifying the logical message across copies.
    pub fn key(&self) -> (String, u64) {
        (self.origin.clone(), self.seq)
    }

    /// Encode as the SOAP header element.
    pub fn to_element(&self) -> Element {
        let mut header = Element::with_name(GOSSIP.clone());
        header.push_child(Element::with_name(CONTEXT.clone()).with_text(self.context_id.clone()));
        header.push_child(Element::with_name(TOPIC.clone()).with_text(self.topic.clone()));
        header.push_child(Element::with_name(ORIGIN.clone()).with_text(self.origin.clone()));
        header.push_child(Element::with_name(SEQ.clone()).with_text(self.seq.to_string()));
        header.push_child(Element::with_name(ROUND.clone()).with_text(self.round.to_string()));
        header
    }

    /// Decode from the SOAP header element, if it is one.
    pub fn from_element(element: &Element) -> Option<GossipHeader> {
        if !element.name().matches(Some(WSGOSSIP_NS), "Gossip") {
            return None;
        }
        Some(GossipHeader {
            context_id: element.child_ns(WSGOSSIP_NS, "Context")?.text(),
            topic: element.child_ns(WSGOSSIP_NS, "Topic")?.text(),
            origin: element.child_ns(WSGOSSIP_NS, "Origin")?.text(),
            seq: element.child_ns(WSGOSSIP_NS, "Seq")?.text().parse().ok()?,
            round: element.child_ns(WSGOSSIP_NS, "Round")?.text().parse().ok()?,
        })
    }

    /// Find and decode the gossip header of an envelope.
    pub fn from_envelope(envelope: &wsg_soap::Envelope) -> Option<GossipHeader> {
        envelope
            .header(WSGOSSIP_NS, "Gossip")
            .and_then(GossipHeader::from_element)
    }

    /// A copy of this header with the hop count incremented.
    pub fn next_round(&self) -> GossipHeader {
        GossipHeader { round: self.round + 1, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GossipHeader {
        GossipHeader {
            context_id: "urn:ws-gossip:ctx:0".into(),
            topic: "quotes".into(),
            origin: "http://node1/gossip".into(),
            seq: 42,
            round: 3,
        }
    }

    #[test]
    fn element_roundtrip() {
        let header = sample();
        assert_eq!(GossipHeader::from_element(&header.to_element()), Some(header));
    }

    #[test]
    fn envelope_roundtrip() {
        let env = wsg_soap::Envelope::request(
            wsg_soap::MessageHeaders::request("http://x", "urn:op"),
            wsg_xml::Element::new("op"),
        )
        .with_header(sample().to_element());
        let wire = env.to_xml();
        let parsed = wsg_soap::Envelope::parse(&wire).unwrap();
        assert_eq!(GossipHeader::from_envelope(&parsed), Some(sample()));
    }

    #[test]
    fn next_round_increments_only_round() {
        let header = sample();
        let next = header.next_round();
        assert_eq!(next.round, 4);
        assert_eq!(next.key(), header.key());
    }

    #[test]
    fn foreign_header_ignored() {
        let foreign = Element::in_ns("x", "urn:other", "Gossip");
        assert_eq!(GossipHeader::from_element(&foreign), None);
    }

    #[test]
    fn malformed_header_rejected() {
        let mut el = sample().to_element();
        el.child_mut("Seq").unwrap().set_text("not-a-number");
        assert_eq!(GossipHeader::from_element(&el), None);
    }
}
