//! Mapping between simulator node identities and service endpoint URIs.
//!
//! WS-* routes on URIs; the simulator routes on [`NodeId`]s. Endpoints are
//! synthesised as `http://node{N}/gossip` so the mapping is bijective and
//! needs no registry.

use wsg_net::NodeId;

/// The service endpoint URI of a node.
///
/// ```
/// use ws_gossip::endpoint;
/// use wsg_net::NodeId;
///
/// assert_eq!(endpoint::endpoint_of(NodeId(3)), "http://node3/gossip");
/// ```
pub fn endpoint_of(node: NodeId) -> String {
    format!("http://node{}/gossip", node.index())
}

/// Parse a node identity back out of an endpoint URI (any path).
///
/// ```
/// use ws_gossip::endpoint;
/// use wsg_net::NodeId;
///
/// assert_eq!(endpoint::node_of("http://node7/registration"), Some(NodeId(7)));
/// assert_eq!(endpoint::node_of("http://elsewhere/svc"), None);
/// ```
pub fn node_of(endpoint: &str) -> Option<NodeId> {
    let rest = endpoint.strip_prefix("http://node")?;
    let digits_end = rest.find('/').unwrap_or(rest.len());
    rest[..digits_end].parse::<usize>().ok().map(NodeId)
}

/// The Activation service endpoint hosted by a coordinator node.
pub fn activation_endpoint(coordinator: NodeId) -> String {
    format!("http://node{}/activation", coordinator.index())
}

/// The Registration service endpoint hosted by a coordinator node.
pub fn registration_endpoint(coordinator: NodeId) -> String {
    format!("http://node{}/registration", coordinator.index())
}

/// The topic pseudo-destination a notification is logically addressed to
/// before the gossip layer re-routes it.
pub fn topic_uri(topic: &str) -> String {
    format!("urn:ws-gossip:topic:{topic}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijective_for_service_endpoints() {
        for i in [0usize, 1, 9, 10, 123, 4096] {
            let node = NodeId(i);
            assert_eq!(node_of(&endpoint_of(node)), Some(node));
            assert_eq!(node_of(&activation_endpoint(node)), Some(node));
            assert_eq!(node_of(&registration_endpoint(node)), Some(node));
        }
    }

    #[test]
    fn rejects_foreign_uris() {
        assert_eq!(node_of("http://example.com/x"), None);
        assert_eq!(node_of("urn:ws-gossip:topic:quotes"), None);
        assert_eq!(node_of("http://nodeX/gossip"), None);
    }

    #[test]
    fn topic_uri_not_a_node() {
        assert_eq!(node_of(&topic_uri("quotes")), None);
    }
}
