//! WS-Addressing Action URIs of the WS-Gossip operations.

use wsg_coord::WSGOSSIP_NS;

/// Action of a `CreateCoordinationContext` request.
pub fn create_context() -> String {
    format!("{WSGOSSIP_NS}:CreateCoordinationContext")
}

/// Action of a `CreateCoordinationContextResponse`.
pub fn create_context_response() -> String {
    format!("{WSGOSSIP_NS}:CreateCoordinationContextResponse")
}

/// Action of a `Register` request.
pub fn register() -> String {
    format!("{WSGOSSIP_NS}:Register")
}

/// Action of a `RegisterResponse`.
pub fn register_response() -> String {
    format!("{WSGOSSIP_NS}:RegisterResponse")
}

/// Action of a `Subscribe` request.
pub fn subscribe() -> String {
    format!("{WSGOSSIP_NS}:Subscribe")
}

/// Action of a `SubscribeResponse` acknowledgement.
pub fn subscribe_response() -> String {
    format!("{WSGOSSIP_NS}:SubscribeResponse")
}

/// Action of an application notification (the `op` of Figure 1).
pub fn notify() -> String {
    format!("{WSGOSSIP_NS}:Notify")
}

/// Action of an `Unsubscribe` request.
pub fn unsubscribe() -> String {
    format!("{WSGOSSIP_NS}:Unsubscribe")
}

/// Action of a coordinator-to-coordinator state sync (distributed
/// coordinator mode).
pub fn coordinator_sync() -> String {
    format!("{WSGOSSIP_NS}:CoordinatorSync")
}

#[cfg(test)]
mod tests {
    #[test]
    fn actions_are_distinct() {
        let all = [
            super::create_context(),
            super::create_context_response(),
            super::register(),
            super::register_response(),
            super::subscribe(),
            super::subscribe_response(),
            super::notify(),
            super::coordinator_sync(),
            super::unsubscribe(),
        ];
        let unique: std::collections::HashSet<&String> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }
}
