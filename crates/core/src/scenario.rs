//! Scenario helpers: build and drive Figure-1-shaped networks.
//!
//! Used by the examples, the integration tests and the E1 harness so they
//! all exercise the same, fully faithful message flow.

use std::sync::{Arc, Mutex};

use wsg_coord::GossipProtocol;
use wsg_net::sim::{SimConfig, SimNet};
use wsg_net::{NodeId, TraceEvent};
use wsg_xml::Element;

use crate::actions;
use crate::header::GossipHeader;
use crate::node::{Role, WsGossipNode};

/// How many of each gossip-capable role to deploy (plus exactly one
/// Coordinator at node 0 and one Initiator at node 1).
#[derive(Debug, Clone, Copy)]
pub struct Figure1Shape {
    /// Nodes with the gossip handler configured (middleware change only).
    pub disseminators: usize,
    /// Completely unchanged nodes.
    pub consumers: usize,
}

/// Node id of the Coordinator in scenario networks.
pub const COORDINATOR: NodeId = NodeId(0);
/// Node id of the Initiator in scenario networks.
pub const INITIATOR: NodeId = NodeId(1);

/// Build the Figure 1 network: node 0 Coordinator, node 1 Initiator, then
/// `disseminators` Disseminators, then `consumers` Consumers.
pub fn build_figure1_network(config: SimConfig, shape: Figure1Shape) -> SimNet<WsGossipNode> {
    // Peer sampling in the gossip layer runs on the node's own stream,
    // not the simulator's; derive it from the master seed so the whole
    // run remains a pure function of the configured seed.
    let seed = config.master_seed();
    let mut net = SimNet::new(config);
    let total = 2 + shape.disseminators + shape.consumers;
    net.add_nodes(total, |id| {
        let node = match id.index() {
            0 => WsGossipNode::coordinator(id),
            1 => WsGossipNode::initiator(id, COORDINATOR),
            i if i < 2 + shape.disseminators => WsGossipNode::disseminator(id, COORDINATOR),
            _ => WsGossipNode::consumer(id, COORDINATOR),
        };
        node.with_seed(seed)
    });
    net.set_size_fn(Box::new(|xml: &String| xml.len()));
    net.start();
    net
}

/// Subscribe every disseminator and consumer to `topic`.
pub fn subscribe_all(net: &mut SimNet<WsGossipNode>, topic: &str) {
    for id in net.node_ids() {
        let role = net.node(id).role();
        if matches!(role, Role::Disseminator | Role::Consumer) {
            let topic = topic.to_string();
            net.invoke(id, move |node, ctx| node.subscribe(&topic, ctx));
        }
    }
}

/// Initiator activates a WS-PushGossip context for `topic`.
pub fn activate(net: &mut SimNet<WsGossipNode>, topic: &str) {
    activate_with(net, GossipProtocol::Push, topic);
}

/// Initiator activates a context with an explicit protocol.
pub fn activate_with(net: &mut SimNet<WsGossipNode>, protocol: GossipProtocol, topic: &str) {
    let topic = topic.to_string();
    net.invoke(INITIATOR, move |node, ctx| node.activate(protocol, &topic, ctx));
}

/// Initiator publishes one notification on `topic`.
pub fn notify(net: &mut SimNet<WsGossipNode>, topic: &str, payload: Element) {
    let topic = topic.to_string();
    net.invoke(INITIATOR, move |node, ctx| node.notify(&topic, payload, ctx));
}

/// Fraction of subscribers (disseminators + consumers) that received at
/// least `min_distinct` distinct notifications.
pub fn coverage(net: &SimNet<WsGossipNode>, min_distinct: usize) -> f64 {
    let subscribers: Vec<NodeId> = net
        .node_ids()
        .into_iter()
        .filter(|id| matches!(net.node(*id).role(), Role::Disseminator | Role::Consumer))
        .collect();
    if subscribers.is_empty() {
        return 0.0;
    }
    let reached = subscribers
        .iter()
        .filter(|id| net.node(**id).distinct_ops().len() >= min_distinct)
        .count();
    reached as f64 / subscribers.len() as f64
}

/// Install a tracer that renders each network event with a terse,
/// WS-Gossip-aware message label (`Notify[seq=0 r=2]`, `Register`, …);
/// returns the shared buffer the trace accumulates into.
pub fn install_tracer(net: &mut SimNet<WsGossipNode>) -> Arc<Mutex<Vec<String>>> {
    let buffer: Arc<Mutex<Vec<String>>> = Arc::default();
    let sink = buffer.clone();
    net.set_label_fn(Box::new(label_for));
    net.set_tracer(Box::new(move |event: &TraceEvent| {
        sink.lock().expect("tracer lock").push(event.to_line());
    }));
    buffer
}

/// Shape of a distributed-coordinator deployment: `coordinators`
/// coordinator nodes replicate state among themselves; subscribers are
/// assigned home coordinators round-robin.
#[derive(Debug, Clone, Copy)]
pub struct DistributedShape {
    /// Number of coordinator replicas (nodes `0..coordinators`).
    pub coordinators: usize,
    /// Disseminator count.
    pub disseminators: usize,
    /// Consumer count.
    pub consumers: usize,
}

/// Build a distributed-coordinator network: nodes `0..k` are coordinators
/// gossiping their state to each other (paper §3's distributed
/// Coordinator), node `k` is the Initiator (homed at coordinator 0), and
/// subscribers follow with round-robin home coordinators.
pub fn build_distributed_network(
    config: SimConfig,
    shape: DistributedShape,
) -> SimNet<WsGossipNode> {
    assert!(shape.coordinators >= 1, "need at least one coordinator");
    let k = shape.coordinators;
    let coordinator_ids: Vec<NodeId> = (0..k).map(NodeId).collect();
    let total = k + 1 + shape.disseminators + shape.consumers;
    // As in `build_figure1_network`: node-local RNG streams must derive
    // from the master seed.
    let seed = config.master_seed();
    let mut net = SimNet::new(config);
    net.add_nodes(total, |id| {
        let i = id.index();
        if i < k {
            // `with_seed` rebuilds the node, so it must precede other
            // builder calls.
            WsGossipNode::coordinator(id)
                .with_seed(seed)
                .with_coordinator_peers(coordinator_ids.clone())
        } else if i == k {
            WsGossipNode::initiator(id, NodeId(0)).with_seed(seed)
        } else {
            // Home coordinator round-robin over the replicas.
            let home = NodeId((i - k - 1) % k);
            if i < k + 1 + shape.disseminators {
                WsGossipNode::disseminator(id, home).with_seed(seed)
            } else {
                WsGossipNode::consumer(id, home).with_seed(seed)
            }
        }
    });
    net.set_size_fn(Box::new(|xml: &String| xml.len()));
    net.start();
    net
}

/// The Initiator node id in distributed networks built by
/// [`build_distributed_network`].
pub fn distributed_initiator(shape: DistributedShape) -> NodeId {
    NodeId(shape.coordinators)
}

/// Terse label for a serialized envelope (used in traces).
#[allow(clippy::ptr_arg)] // signature fixed by SimNet's LabelFn
pub fn label_for(xml: &String) -> String {
    let Ok(envelope) = wsg_soap::Envelope::parse(xml) else {
        return "<unparseable>".into();
    };
    let action = envelope.addressing().action().unwrap_or("?");
    let short = action.rsplit(':').next().unwrap_or(action);
    match GossipHeader::from_envelope(&envelope) {
        Some(h) if action == actions::notify() => {
            format!("{short}[{} seq={} r={}]", h.topic, h.seq, h.round)
        }
        _ => short.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_basic(seed: u64, shape: Figure1Shape) -> SimNet<WsGossipNode> {
        let mut net = build_figure1_network(SimConfig::default().seed(seed), shape);
        subscribe_all(&mut net, "quotes");
        net.run_to_quiescence();
        activate(&mut net, "quotes");
        net.run_to_quiescence();
        notify(&mut net, "quotes", Element::text_node("tick", "ACME 101.25"));
        net.run_to_quiescence();
        net
    }

    #[test]
    fn figure1_flow_reaches_all_subscribers() {
        let net = run_basic(1, Figure1Shape { disseminators: 4, consumers: 3 });
        assert_eq!(coverage(&net, 1), 1.0);
    }

    #[test]
    fn consumers_receive_without_any_gossip_machinery() {
        let net = run_basic(2, Figure1Shape { disseminators: 3, consumers: 2 });
        for id in net.node_ids() {
            let node = net.node(id);
            if node.role() == Role::Consumer {
                assert!(node.layer_stats().is_none());
                assert!(!node.distinct_ops().is_empty());
            }
        }
    }

    #[test]
    fn disseminators_register_with_coordinator() {
        let net = run_basic(3, Figure1Shape { disseminators: 4, consumers: 1 });
        // Initiator + every disseminator that received the op registers.
        let registered: u64 = net
            .node_ids()
            .into_iter()
            .filter_map(|id| net.node(id).layer_stats())
            .map(|s| s.registers_sent)
            .sum();
        assert!(registered >= 1, "at least the first disseminator registers");
        let coordinator = net.node(COORDINATOR);
        assert_eq!(coordinator.role(), Role::Coordinator);
    }

    #[test]
    fn multiple_notifications_all_delivered() {
        // A saturating fanout makes every message a deterministic flood, so
        // strict full coverage is a sound assertion (the probabilistic
        // regime is exercised by the E2 reliability experiment instead).
        let mut net = SimNet::new(SimConfig::default().seed(4));
        net.add_nodes(9, |id| match id.index() {
            0 => WsGossipNode::coordinator(id).with_policy(wsg_coord::GossipPolicy::new(
                wsg_gossip::GossipParams::new(8, 6),
            )),
            1 => WsGossipNode::initiator(id, COORDINATOR),
            i if i < 7 => WsGossipNode::disseminator(id, COORDINATOR),
            _ => WsGossipNode::consumer(id, COORDINATOR),
        });
        net.start();
        subscribe_all(&mut net, "quotes");
        net.run_to_quiescence();
        activate(&mut net, "quotes");
        net.run_to_quiescence();
        for i in 0..5 {
            notify(&mut net, "quotes", Element::text_node("tick", format!("v{i}")));
        }
        net.run_to_quiescence();
        assert_eq!(coverage(&net, 5), 1.0, "all 5 ops at every subscriber");
    }

    #[test]
    fn notify_before_activation_response_is_queued_then_sent() {
        let mut net = build_figure1_network(
            SimConfig::default().seed(5),
            Figure1Shape { disseminators: 3, consumers: 1 },
        );
        subscribe_all(&mut net, "quotes");
        net.run_to_quiescence();
        // Activate and notify back-to-back without letting the response
        // arrive in between.
        activate(&mut net, "quotes");
        notify(&mut net, "quotes", Element::text_node("tick", "early"));
        net.run_to_quiescence();
        assert_eq!(coverage(&net, 1), 1.0);
    }

    #[test]
    fn trace_contains_figure1_message_kinds() {
        let mut net = build_figure1_network(
            SimConfig::default().seed(6),
            Figure1Shape { disseminators: 2, consumers: 1 },
        );
        let trace = install_tracer(&mut net);
        subscribe_all(&mut net, "quotes");
        net.run_to_quiescence();
        activate(&mut net, "quotes");
        net.run_to_quiescence();
        notify(&mut net, "quotes", Element::text_node("tick", "X"));
        net.run_to_quiescence();
        let lines = trace.lock().unwrap().join("\n");
        for needle in [
            "Subscribe",
            "SubscribeResponse",
            "CreateCoordinationContext",
            "CreateCoordinationContextResponse",
            "Register",
            "RegisterResponse",
            "Notify[quotes",
        ] {
            assert!(lines.contains(needle), "trace missing {needle}:\n{lines}");
        }
    }

    #[test]
    fn deterministic_scenario() {
        let a = run_basic(7, Figure1Shape { disseminators: 4, consumers: 2 });
        let b = run_basic(7, Figure1Shape { disseminators: 4, consumers: 2 });
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn wire_bytes_accounted() {
        let net = run_basic(8, Figure1Shape { disseminators: 2, consumers: 1 });
        assert!(net.stats().bytes_sent > 0, "size_fn installed by builder");
    }
}
