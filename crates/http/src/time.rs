//! The wall-clock [`Clock`]: the bridge that lets clock-generic protocol
//! layers (`wsg_membership`, `wsg_cluster`) run over real sockets.
//!
//! Everything below the transport is written against
//! [`wsg_net::time::Clock`] and tested with `ManualClock`, which keeps the
//! simulated runs bit-identical. `wsg_http` is one of the two crates the
//! D2 lint rule permits to observe the wall clock (the other is
//! `wsg_bench::timing` — see `wsg_net::time`'s module docs), so the
//! `Instant`-backed implementation lives here.

use std::time::Instant;

use wsg_net::time::{Clock, SimDuration, SimTime};

/// A [`Clock`] that reports wall-clock time elapsed since its creation
/// (or a chosen epoch) as [`SimTime`].
///
/// Anchoring to a construction-time epoch rather than an absolute clock
/// keeps the reported values small, monotone and comparable across every
/// component sharing one `WallClock` — the same shape `MembershipView`
/// timestamps have in simulation.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose `now()` starts at [`SimTime::ZERO`].
    pub fn new() -> Self {
        WallClock { epoch: Instant::now() }
    }

    /// A clock sharing `epoch` with other components (e.g. the runtime's
    /// start instant, so membership timestamps line up with transport
    /// metrics).
    pub fn since(epoch: Instant) -> Self {
        WallClock { epoch }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_std(self.epoch.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_anchored_at_zero() {
        let clock = WallClock::new();
        let first = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let second = clock.now();
        assert!(second > first, "{second:?} must advance past {first:?}");
        assert!(first < SimTime::ZERO + SimDuration::from_secs(5), "epoch anchors near zero");
    }

    #[test]
    fn shared_epoch_clocks_agree() {
        let epoch = Instant::now();
        let a = WallClock::since(epoch);
        let b = WallClock::since(epoch);
        let (ta, tb) = (a.now(), b.now());
        let gap = if ta > tb { ta.since(tb) } else { tb.since(ta) };
        assert!(gap < SimDuration::from_millis(100), "clocks diverged by {gap:?}");
    }
}
