//! Incremental HTTP/1.1 parsing.
//!
//! Sockets hand bytes over in arbitrary chunks, so both parsers here are
//! push-based: [`RequestParser::feed`] buffers whatever a `read` returned
//! and [`RequestParser::parse`] yields [`Parsed::Complete`] once the head
//! and the full `Content-Length` body are buffered, [`Parsed::Partial`]
//! otherwise. Bytes of a pipelined next message are left in the buffer.
//!
//! Malformed input is a typed [`ParseError`] — never a panic — so the
//! server can answer `400 Bad Request` and move on. Chunked transfer
//! encoding is deliberately unsupported (every peer in this workspace
//! sends `Content-Length`); a `Transfer-Encoding` header is rejected
//! rather than misparsed.

use std::fmt;

use wsg_net::cov;

use crate::message::{Headers, Request, Response};

/// Hard cap on the head (request/status line + headers) in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard cap on a message body in bytes.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Why a message could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line was not `METHOD SP target SP HTTP/1.x`.
    BadRequestLine(String),
    /// The status line was not `HTTP/1.x SP code SP reason`.
    BadStatusLine(String),
    /// A header field was malformed (no colon, empty or non-token name).
    BadHeader(String),
    /// `Content-Length` was not a decimal integer.
    BadContentLength(String),
    /// `Transfer-Encoding` (e.g. chunked) is not supported.
    UnsupportedTransferEncoding,
    /// The head exceeded the configured limit without terminating.
    HeadTooLarge(usize),
    /// The declared body length exceeded the configured limit.
    BodyTooLarge(usize),
    /// The head contained bytes that are not valid UTF-8.
    NonUtf8Head,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadRequestLine(line) => write!(f, "malformed request line: {line:?}"),
            ParseError::BadStatusLine(line) => write!(f, "malformed status line: {line:?}"),
            ParseError::BadHeader(line) => write!(f, "malformed header field: {line:?}"),
            ParseError::BadContentLength(v) => write!(f, "invalid Content-Length: {v:?}"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding is not supported")
            }
            ParseError::HeadTooLarge(n) => write!(f, "message head exceeds {n} bytes"),
            ParseError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes exceeds limit"),
            ParseError::NonUtf8Head => write!(f, "message head is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Outcome of a parse attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed<T> {
    /// A full message; trailing pipelined bytes stay buffered.
    Complete(T),
    /// More bytes are needed.
    Partial,
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// RFC 9110 token characters (header names, methods).
fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().all(|b| {
            b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
        })
}

fn parse_header_lines<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Headers, ParseError> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            cov!();
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            cov!();
            return Err(ParseError::BadHeader(line.to_string()));
        };
        if !is_token(name) {
            cov!();
            return Err(ParseError::BadHeader(line.to_string()));
        }
        cov!();
        headers.push(name, value.trim());
    }
    Ok(headers)
}

fn content_length(headers: &Headers, max_body: usize) -> Result<usize, ParseError> {
    if headers.get("transfer-encoding").is_some() {
        cov!();
        return Err(ParseError::UnsupportedTransferEncoding);
    }
    let length = match headers.get("content-length") {
        Some(v) => {
            cov!();
            v.trim().parse::<usize>().map_err(|_| {
                cov!();
                ParseError::BadContentLength(v.to_string())
            })?
        }
        None => {
            cov!();
            0
        }
    };
    if length > max_body {
        cov!();
        return Err(ParseError::BodyTooLarge(length));
    }
    Ok(length)
}

/// Shared buffering logic for both parsers.
#[derive(Debug)]
struct Buffer {
    bytes: Vec<u8>,
    max_head: usize,
    max_body: usize,
}

/// Head lines (request/status line + header lines) plus the raw body.
type HeadAndBody = (Vec<String>, Vec<u8>);

impl Buffer {
    fn new(max_head: usize, max_body: usize) -> Self {
        Buffer { bytes: Vec::new(), max_head, max_body }
    }

    fn feed(&mut self, chunk: &[u8]) {
        self.bytes.extend_from_slice(chunk);
    }

    /// Split head (as UTF-8 lines) and body once both are buffered.
    /// Returns `Ok(None)` when more bytes are needed.
    fn split_message(&mut self) -> Result<Option<HeadAndBody>, ParseError> {
        let Some(head_end) = find_head_end(&self.bytes) else {
            if self.bytes.len() > self.max_head {
                cov!();
                return Err(ParseError::HeadTooLarge(self.max_head));
            }
            cov!();
            return Ok(None);
        };
        if head_end > self.max_head {
            cov!();
            return Err(ParseError::HeadTooLarge(self.max_head));
        }
        let head = std::str::from_utf8(&self.bytes[..head_end]).map_err(|_| {
            cov!();
            ParseError::NonUtf8Head
        })?;
        let lines: Vec<String> = head.split("\r\n").map(str::to_string).collect();
        let headers = parse_header_lines(lines.iter().skip(1).map(String::as_str))?;
        let body_len = content_length(&headers, self.max_body)?;
        let body_start = head_end + 4;
        if self.bytes.len() < body_start + body_len {
            cov!();
            return Ok(None);
        }
        cov!();
        let body = self.bytes[body_start..body_start + body_len].to_vec();
        self.bytes.drain(..body_start + body_len);
        Ok(Some((lines, body)))
    }
}

/// Incremental parser for HTTP requests (server side).
#[derive(Debug)]
pub struct RequestParser {
    buffer: Buffer,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser with the default head/body limits.
    pub fn new() -> Self {
        Self::with_limits(MAX_HEAD_BYTES, MAX_BODY_BYTES)
    }

    /// A parser with explicit head/body limits.
    pub fn with_limits(max_head: usize, max_body: usize) -> Self {
        RequestParser { buffer: Buffer::new(max_head, max_body) }
    }

    /// Buffer another chunk read from the socket.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buffer.feed(chunk);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buffer.bytes.len()
    }

    /// Try to produce a complete request from the buffered bytes.
    ///
    /// # Errors
    ///
    /// Any [`ParseError`]; the connection should be answered with 400 and
    /// closed, since resynchronisation is impossible.
    pub fn parse(&mut self) -> Result<Parsed<Request>, ParseError> {
        let Some((lines, body)) = self.buffer.split_message()? else {
            return Ok(Parsed::Partial);
        };
        let request_line = lines.first().map(String::as_str).unwrap_or("");
        let (method, target, version) = parse_request_line(request_line)?;
        let headers = parse_header_lines(lines.iter().skip(1).map(String::as_str))?;
        Ok(Parsed::Complete(Request { method, target, version, headers, body }))
    }
}

fn parse_request_line(line: &str) -> Result<(String, String, String), ParseError> {
    let bad = || ParseError::BadRequestLine(line.to_string());
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            cov!();
            return Err(bad());
        }
    };
    if !is_token(method) || target.is_empty() {
        cov!();
        return Err(bad());
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        cov!();
        return Err(bad());
    }
    cov!();
    Ok((method.to_string(), target.to_string(), version.to_string()))
}

/// Incremental parser for HTTP responses (client side).
#[derive(Debug)]
pub struct ResponseParser {
    buffer: Buffer,
}

impl Default for ResponseParser {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseParser {
    /// A parser with the default head/body limits.
    pub fn new() -> Self {
        ResponseParser { buffer: Buffer::new(MAX_HEAD_BYTES, MAX_BODY_BYTES) }
    }

    /// Buffer another chunk read from the socket.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buffer.feed(chunk);
    }

    /// Try to produce a complete response from the buffered bytes.
    ///
    /// # Errors
    ///
    /// Any [`ParseError`]; the connection should be discarded.
    pub fn parse(&mut self) -> Result<Parsed<Response>, ParseError> {
        let Some((lines, body)) = self.buffer.split_message()? else {
            return Ok(Parsed::Partial);
        };
        let status_line = lines.first().map(String::as_str).unwrap_or("");
        let (version, status, reason) = parse_status_line(status_line)?;
        let headers = parse_header_lines(lines.iter().skip(1).map(String::as_str))?;
        Ok(Parsed::Complete(Response { version, status, reason, headers, body }))
    }
}

fn parse_status_line(line: &str) -> Result<(String, u16, String), ParseError> {
    let bad = || ParseError::BadStatusLine(line.to_string());
    let mut parts = line.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) => (v, c),
        _ => {
            cov!();
            return Err(bad());
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        cov!();
        return Err(bad());
    }
    let status = code.parse::<u16>().map_err(|_| {
        cov!();
        bad()
    })?;
    if !(100..=599).contains(&status) {
        cov!();
        return Err(bad());
    }
    cov!();
    let reason = parts.next().unwrap_or("").to_string();
    Ok((version.to_string(), status, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(wire: &[u8]) -> Result<Parsed<Request>, ParseError> {
        let mut p = RequestParser::new();
        p.feed(wire);
        p.parse()
    }

    #[test]
    fn whole_request_in_one_chunk() {
        let wire = b"POST /gossip HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        match parse_all(wire).unwrap() {
            Parsed::Complete(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.target, "/gossip");
                assert_eq!(req.body, b"hello");
            }
            Parsed::Partial => panic!("should be complete"),
        }
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 3\r\nSOAPAction: \"urn:x\"\r\n\r\nabc";
        let mut p = RequestParser::new();
        for (i, byte) in wire.iter().enumerate() {
            p.feed(&[*byte]);
            let parsed = p.parse().unwrap();
            if i + 1 < wire.len() {
                assert!(matches!(parsed, Parsed::Partial), "early completion at byte {i}");
            } else {
                match parsed {
                    Parsed::Complete(req) => {
                        assert_eq!(req.body, b"abc");
                        assert_eq!(req.soap_action(), Some("urn:x"));
                    }
                    Parsed::Partial => panic!("never completed"),
                }
            }
        }
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_keep_remainder() {
        let wire = b"POST /a HTTP/1.1\r\nContent-Length: 1\r\n\r\nXPOST /b HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
        let mut p = RequestParser::new();
        p.feed(wire);
        let first = match p.parse().unwrap() {
            Parsed::Complete(r) => r,
            Parsed::Partial => panic!(),
        };
        assert_eq!(first.target, "/a");
        assert_eq!(first.body, b"X");
        let second = match p.parse().unwrap() {
            Parsed::Complete(r) => r,
            Parsed::Partial => panic!(),
        };
        assert_eq!(second.target, "/b");
        assert!(second.body.is_empty());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let wire = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n";
        match parse_all(wire).unwrap() {
            Parsed::Complete(req) => assert!(req.body.is_empty()),
            Parsed::Partial => panic!(),
        }
    }

    #[test]
    fn malformed_request_lines_error() {
        for line in [
            "",
            "POST",
            "POST /x",
            "POST /x HTTP/1.1 extra",
            "POST  HTTP/1.1",
            "POST /x HTTP/9.9",
            "P()ST /x HTTP/1.1",
            " POST /x HTTP/1.1",
        ] {
            let wire = format!("{line}\r\n\r\n");
            assert!(
                matches!(parse_all(wire.as_bytes()), Err(ParseError::BadRequestLine(_))),
                "line {line:?} should be rejected"
            );
        }
    }

    #[test]
    fn malformed_headers_error() {
        let no_colon = b"POST / HTTP/1.1\r\nBadHeader\r\n\r\n";
        assert!(matches!(parse_all(no_colon), Err(ParseError::BadHeader(_))));
        let spaced_name = b"POST / HTTP/1.1\r\nBad Header: v\r\n\r\n";
        assert!(matches!(parse_all(spaced_name), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn bad_content_length_errors() {
        let wire = b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert!(matches!(parse_all(wire), Err(ParseError::BadContentLength(_))));
    }

    #[test]
    fn chunked_is_rejected_not_misparsed() {
        let wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
        assert!(matches!(
            parse_all(wire),
            Err(ParseError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn oversized_head_errors() {
        let mut p = RequestParser::with_limits(64, 1024);
        p.feed(b"POST / HTTP/1.1\r\n");
        let long = format!("X-Filler: {}\r\n", "y".repeat(100));
        p.feed(long.as_bytes());
        assert!(matches!(p.parse(), Err(ParseError::HeadTooLarge(_))));
    }

    #[test]
    fn oversized_body_errors() {
        let mut p = RequestParser::with_limits(1024, 8);
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
        assert!(matches!(p.parse(), Err(ParseError::BodyTooLarge(9))));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::with_body(200, "OK", "text/plain", b"yo".to_vec());
        let mut p = ResponseParser::new();
        p.feed(&resp.to_bytes());
        match p.parse().unwrap() {
            Parsed::Complete(parsed) => {
                assert_eq!(parsed.status, 200);
                assert_eq!(parsed.reason, "OK");
                assert_eq!(parsed.body, b"yo");
            }
            Parsed::Partial => panic!(),
        }
    }

    #[test]
    fn response_reason_may_contain_spaces() {
        let wire = b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\n\r\n";
        let mut p = ResponseParser::new();
        p.feed(wire);
        match p.parse().unwrap() {
            Parsed::Complete(resp) => {
                assert_eq!(resp.status, 500);
                assert_eq!(resp.reason, "Internal Server Error");
            }
            Parsed::Partial => panic!(),
        }
    }

    #[test]
    fn malformed_status_lines_error() {
        for line in ["", "HTTP/1.1", "HTTP/2 200 OK", "HTTP/1.1 abc OK", "HTTP/1.1 99 low"] {
            let wire = format!("{line}\r\nContent-Length: 0\r\n\r\n");
            let mut p = ResponseParser::new();
            p.feed(wire.as_bytes());
            assert!(
                matches!(p.parse(), Err(ParseError::BadStatusLine(_))),
                "status line {line:?} should be rejected"
            );
        }
    }
}
