//! The networked node runtime: `wsg_net::threads::ThreadNet`'s twin with
//! loopback sockets instead of channels.
//!
//! [`NetRuntime::spawn`] gives every `Protocol<Message = String>` node
//! three things:
//!
//! * an HTTP **server** on `127.0.0.1:0` whose service parses each POSTed
//!   SOAP envelope and enqueues it on the node's inbox;
//! * a **node loop** thread identical in structure to the threaded
//!   runtime's (timers on wall-clock, deterministic per-node RNG), whose
//!   outgoing `ctx.send(to, xml)` calls go to...
//! * a **sender** thread owning a pooled, retrying [`SoapHttpClient`]
//!   that POSTs each serialized envelope to the destination node's socket.
//!
//! Because the node's view of the world is still just [`Context`], the
//! gossip protocols run here byte-for-byte unchanged from the simulator —
//! only now a gossip round is real HTTP traffic that `tcpdump` would show.
//!
//! ## Fault injection
//!
//! [`NetRuntimeConfig::refuse`] lists nodes that get an address but no
//! listener (the port is bound and immediately released): peers that pick
//! them as gossip targets see `ECONNREFUSED` and walk the client's
//! retry/backoff path, exactly like gossiping to a crashed process.

use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wsg_net::protocol::{Context, NodeId, Protocol, TimerTag};
use wsg_net::rng::{Pcg32, Rng64, SplitMix64};
use wsg_net::time::{SimDuration, SimTime};
use wsg_obs::{Counter, Registry};
use wsg_soap::{Envelope, Fault, FaultCode};

use crate::client::{HttpClientConfig, PostError, PostOutcome, SoapHttpClient};
use crate::server::{
    HttpServerConfig, SoapHttpServer, SoapReply, SoapRequest, Service, NODE_HEADER,
};

/// The request target every gossip node serves.
pub const GOSSIP_TARGET: &str = "/gossip";

/// `from` reported to a protocol when the sender did not identify itself
/// with the [`NODE_HEADER`] header (e.g. an external test client).
pub const EXTERNAL_SENDER: NodeId = NodeId(usize::MAX);

/// Tuning knobs for [`NetRuntime`].
#[derive(Debug, Clone, Default)]
pub struct NetRuntimeConfig {
    /// Client-side (sender thread) configuration, per node.
    pub client: HttpClientConfig,
    /// Server-side configuration, per node.
    pub server: HttpServerConfig,
    /// Nodes that get an address but no listener: connections to them are
    /// refused, exercising peers' retry/backoff paths.
    pub refuse: Vec<NodeId>,
}

/// Transport-level counters a node's sender thread accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Envelopes that reached their destination (any HTTP status).
    pub posts_ok: u64,
    /// Envelopes abandoned after exhausting retries.
    pub posts_failed: u64,
    /// Connect attempts across all posts (≥ posts when retries happened).
    pub attempts: u64,
    /// Sends to node ids outside the deployment (dropped).
    pub unroutable: u64,
}

/// A node's final state after shutdown: protocol + transport counters.
#[derive(Debug)]
pub struct NetNode<P> {
    /// The protocol state machine in its final state.
    pub protocol: P,
    /// What its sender thread saw at the transport level.
    pub transport: TransportStats,
}

enum Inbox {
    Message { from: NodeId, xml: String },
    Stop,
}

struct Outbound {
    to: NodeId,
    xml: String,
}

struct NetCtx<'a> {
    start: Instant,
    id: NodeId,
    node_count: usize,
    rng: &'a mut Pcg32,
    outbox: Vec<(NodeId, String)>,
    timer_requests: Vec<(SimDuration, TimerTag)>,
}

impl Context<String> for NetCtx<'_> {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }
    fn self_id(&self) -> NodeId {
        self.id
    }
    fn node_count(&self) -> usize {
        self.node_count
    }
    fn send(&mut self, to: NodeId, msg: String) {
        self.outbox.push((to, msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
        self.timer_requests.push((delay, tag));
    }
    fn rng(&mut self) -> &mut dyn Rng64 {
        self.rng
    }
}

/// A live network of protocol nodes on loopback HTTP sockets.
pub struct NetRuntime<P: Protocol<Message = String>> {
    addrs: Vec<SocketAddr>,
    inbox_senders: Vec<Sender<Inbox>>,
    node_handles: Vec<JoinHandle<P>>,
    sender_handles: Vec<JoinHandle<TransportStats>>,
    servers: Vec<Option<SoapHttpServer>>,
    registries: Vec<Arc<Registry>>,
    external: SoapHttpClient,
}

impl<P> NetRuntime<P>
where
    P: Protocol<Message = String> + Send + 'static,
{
    /// Bind one loopback socket per protocol and start all nodes.
    ///
    /// All listeners are bound before any node runs, so the address table
    /// handed to the sender threads is complete from the first gossip
    /// round. `seed` drives every node's protocol RNG and its client's
    /// backoff jitter through one `SplitMix64` chain, in node order.
    ///
    /// # Panics
    ///
    /// Panics if a loopback socket cannot be bound — a networked runtime
    /// without a network has no useful degraded mode.
    pub fn spawn(protocols: Vec<P>, seed: u64, config: NetRuntimeConfig) -> Self {
        let node_count = protocols.len();
        let start = Instant::now();
        let mut seeder = SplitMix64::new(seed);

        // Phase 1: bind everything so the address table is complete.
        let mut addrs = Vec::with_capacity(node_count);
        let mut listeners = Vec::with_capacity(node_count);
        for index in 0..node_count {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
            addrs.push(listener.local_addr().expect("listener local addr"));
            if config.refuse.contains(&NodeId(index)) {
                // Keep the address, drop the listener: ECONNREFUSED.
                listeners.push(None);
            } else {
                listeners.push(Some(listener));
            }
        }

        // Phase 2: per-node plumbing. RNG draws happen in node order so a
        // given seed always produces the same per-node streams.
        let mut inbox_senders = Vec::with_capacity(node_count);
        let mut inbox_receivers = Vec::with_capacity(node_count);
        let mut rngs = Vec::with_capacity(node_count);
        let mut client_seeds = Vec::with_capacity(node_count);
        let mut registries = Vec::with_capacity(node_count);
        for index in 0..node_count {
            let (tx, rx): (Sender<Inbox>, Receiver<Inbox>) = channel();
            inbox_senders.push(tx);
            inbox_receivers.push(rx);
            rngs.push(Pcg32::new(seeder.next(), index as u64));
            client_seeds.push(seeder.next());
            // One registry per node, shared by its server, its sender
            // thread's client, and its transport counters — `GET
            // /metrics` on the node's socket shows all of them.
            registries.push(Arc::new(Registry::new()));
        }
        let external = SoapHttpClient::new(seeder.next(), config.client.clone());

        // Phase 3: servers. Each service just decodes and enqueues; all
        // protocol work happens on the node's own thread.
        let mut servers = Vec::with_capacity(node_count);
        for (index, listener) in listeners.into_iter().enumerate() {
            let Some(listener) = listener else {
                servers.push(None);
                continue;
            };
            let inbox = inbox_senders[index].clone();
            let service: Service = Arc::new(move |request: SoapRequest| {
                let from = request.from_node.map(NodeId).unwrap_or(EXTERNAL_SENDER);
                inbox
                    .send(Inbox::Message { from, xml: request.raw })
                    .map_err(|_| Fault::new(FaultCode::Receiver, "node is shut down"))?;
                Ok(SoapReply::Accepted)
            });
            servers.push(Some(
                SoapHttpServer::serve_observed(
                    listener,
                    service,
                    config.server.clone(),
                    Arc::clone(&registries[index]),
                )
                .expect("start node http server"),
            ));
        }

        // Phase 4: sender threads (one pooled client per node).
        let mut out_senders = Vec::with_capacity(node_count);
        let mut sender_handles = Vec::with_capacity(node_count);
        for (index, seed) in client_seeds.iter().enumerate() {
            let (out_tx, out_rx): (Sender<Outbound>, Receiver<Outbound>) = channel();
            out_senders.push(out_tx);
            let client =
                SoapHttpClient::new_observed(*seed, config.client.clone(), &registries[index]);
            let transport = TransportMetrics::new(&registries[index]);
            let addrs = addrs.clone();
            sender_handles.push(
                std::thread::Builder::new()
                    .name(format!("wsg-net-sender-{index}"))
                    .spawn(move || sender_loop(index, out_rx, client, addrs, transport))
                    .expect("spawn sender thread"),
            );
        }

        // Phase 5: node loops.
        let mut node_handles = Vec::with_capacity(node_count);
        for (index, (protocol, (rx, (mut rng, out_tx)))) in protocols
            .into_iter()
            .zip(inbox_receivers.into_iter().zip(rngs.into_iter().zip(out_senders)))
            .enumerate()
        {
            let id = NodeId(index);
            node_handles.push(
                std::thread::Builder::new()
                    .name(format!("wsg-net-node-{index}"))
                    .spawn(move || run_node(protocol, id, node_count, rx, out_tx, &mut rng, start))
                    .expect("spawn node thread"),
            );
        }

        NetRuntime {
            addrs,
            inbox_senders,
            node_handles,
            sender_handles,
            servers,
            registries,
            external,
        }
    }

    /// The socket address node `id` serves (or would serve, if refused).
    pub fn addr_of(&self, id: NodeId) -> SocketAddr {
        self.addrs[id.0]
    }

    /// Node `id`'s metric registry — what its `GET /metrics` renders.
    /// Refused nodes have a registry too (their sender thread still
    /// accumulates transport counters); it just isn't scrapeable.
    pub fn registry_of(&self, id: NodeId) -> Arc<Registry> {
        Arc::clone(&self.registries[id.0])
    }

    /// Number of nodes in the deployment.
    pub fn node_count(&self) -> usize {
        self.addrs.len()
    }

    /// POST an envelope to node `to` over a real socket, as an external
    /// client (no node-id header, so the protocol sees
    /// [`EXTERNAL_SENDER`]).
    ///
    /// # Errors
    ///
    /// [`PostError`] if the node is unreachable after retries.
    pub fn post_external(
        &self,
        to: NodeId,
        action: Option<&str>,
        xml: &str,
    ) -> Result<PostOutcome, PostError> {
        self.external.post(self.addrs[to.0], GOSSIP_TARGET, action, &[], xml.as_bytes())
    }

    /// Inject a message into node `to`'s inbox directly (no socket), as if
    /// sent by `from`. Useful for deterministic unit tests; integration
    /// tests should prefer [`NetRuntime::post_external`].
    pub fn send_local(&self, from: NodeId, to: NodeId, xml: String) {
        let _ = self.inbox_senders[to.0].send(Inbox::Message { from, xml });
    }

    /// Let the network run for `duration` of wall-clock time, then stop.
    pub fn shutdown_after(self, duration: Duration) -> Vec<NetNode<P>> {
        std::thread::sleep(duration);
        self.shutdown()
    }

    /// Stop all nodes and return their final states in id order.
    ///
    /// Ordering matters: node loops stop first (dropping their outbound
    /// queues), then sender threads drain what was already queued, then
    /// the servers close — so no in-flight envelope is lost to shutdown.
    pub fn shutdown(mut self) -> Vec<NetNode<P>> {
        for sender in &self.inbox_senders {
            let _ = sender.send(Inbox::Stop);
        }
        let protocols: Vec<P> = self
            .node_handles
            .drain(..)
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        let stats: Vec<TransportStats> = self
            .sender_handles
            .drain(..)
            .map(|h| h.join().expect("sender thread panicked"))
            .collect();
        for server in self.servers.iter_mut().flatten() {
            server.shutdown();
        }
        protocols
            .into_iter()
            .zip(stats)
            .map(|(protocol, transport)| NetNode { protocol, transport })
            .collect()
    }
}

/// Live `wsg_transport_*` counters mirrored into a node's registry by
/// its sender thread, alongside the `TransportStats` it returns on join.
struct TransportMetrics {
    posts_ok: Arc<Counter>,
    posts_failed: Arc<Counter>,
    attempts: Arc<Counter>,
    unroutable: Arc<Counter>,
}

impl TransportMetrics {
    fn new(registry: &Registry) -> Self {
        TransportMetrics {
            posts_ok: registry.register_counter(
                "wsg_transport_posts_ok_total",
                "Gossip envelopes this node posted successfully",
            ),
            posts_failed: registry.register_counter(
                "wsg_transport_posts_failed_total",
                "Gossip envelope posts that failed after all retries",
            ),
            attempts: registry.register_counter(
                "wsg_transport_attempts_total",
                "Connection attempts made by the node's sender thread",
            ),
            unroutable: registry.register_counter(
                "wsg_transport_unroutable_total",
                "Outbound envelopes addressed to unknown node ids",
            ),
        }
    }
}

fn sender_loop(
    index: usize,
    out_rx: Receiver<Outbound>,
    client: SoapHttpClient,
    addrs: Vec<SocketAddr>,
    metrics: TransportMetrics,
) -> TransportStats {
    let mut stats = TransportStats::default();
    let node_header = [(NODE_HEADER.to_string(), index.to_string())];
    // Runs until every clone of the node's out_tx is gone (node stopped).
    while let Ok(Outbound { to, xml }) = out_rx.recv() {
        let Some(addr) = addrs.get(to.0).copied() else {
            stats.unroutable += 1;
            metrics.unroutable.inc();
            continue;
        };
        let action = Envelope::parse(&xml).ok().and_then(|e| {
            e.addressing().action().map(str::to_string)
        });
        match client.post(addr, GOSSIP_TARGET, action.as_deref(), &node_header, xml.as_bytes()) {
            Ok(outcome) => {
                stats.posts_ok += 1;
                stats.attempts += u64::from(outcome.attempts);
                metrics.posts_ok.inc();
                metrics.attempts.add(u64::from(outcome.attempts));
            }
            Err(err) => {
                stats.posts_failed += 1;
                stats.attempts += u64::from(err.attempts);
                metrics.posts_failed.inc();
                metrics.attempts.add(u64::from(err.attempts));
            }
        }
    }
    stats
}

fn run_node<P>(
    mut protocol: P,
    id: NodeId,
    node_count: usize,
    rx: Receiver<Inbox>,
    out_tx: Sender<Outbound>,
    rng: &mut Pcg32,
    start: Instant,
) -> P
where
    P: Protocol<Message = String>,
{
    let mut timers: Vec<(Instant, TimerTag)> = Vec::new();

    let dispatch = |protocol: &mut P,
                    timers: &mut Vec<(Instant, TimerTag)>,
                    rng: &mut Pcg32,
                    event: Option<(NodeId, String)>,
                    fired: Option<TimerTag>| {
        let mut ctx = NetCtx {
            start,
            id,
            node_count,
            rng,
            outbox: Vec::new(),
            timer_requests: Vec::new(),
        };
        match (event, fired) {
            (Some((from, msg)), _) => protocol.on_message(from, msg, &mut ctx),
            (None, Some(tag)) => protocol.on_timer(tag, &mut ctx),
            (None, None) => protocol.on_start(&mut ctx),
        }
        let NetCtx { outbox, timer_requests, .. } = ctx;
        for (to, xml) in outbox {
            let _ = out_tx.send(Outbound { to, xml });
        }
        for (delay, tag) in timer_requests {
            let fire_at = Instant::now() + Duration::from_micros(delay.as_micros());
            timers.push((fire_at, tag));
            timers.sort_by_key(|(at, _)| *at);
        }
    };

    dispatch(&mut protocol, &mut timers, rng, None, None); // on_start

    loop {
        let now = Instant::now();
        while let Some(&(fire_at, tag)) = timers.first() {
            if fire_at > now {
                break;
            }
            timers.remove(0);
            dispatch(&mut protocol, &mut timers, rng, None, Some(tag));
        }
        let timeout = timers
            .first()
            .map(|(at, _)| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Inbox::Message { from, xml }) => {
                dispatch(&mut protocol, &mut timers, rng, Some((from, xml)), None);
            }
            Ok(Inbox::Stop) | Err(RecvTimeoutError::Disconnected) => return protocol,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_soap::MessageHeaders;
    use wsg_xml::Element;

    fn envelope_xml(op: &str, action: &str) -> String {
        Envelope::request(
            MessageHeaders::request("http://peer/gossip", action),
            Element::text_node("op", op),
        )
        .to_xml()
    }

    /// Replies "pong" to every "ping"; records everything it saw.
    struct Ponger {
        seen: Vec<(NodeId, String)>,
    }

    impl Protocol for Ponger {
        type Message = String;
        fn on_message(&mut self, from: NodeId, msg: String, ctx: &mut dyn Context<String>) {
            let op = Envelope::parse(&msg)
                .ok()
                .and_then(|e| e.body().map(|b| b.text()))
                .unwrap_or_default();
            if op == "ping" && from != EXTERNAL_SENDER {
                ctx.send(from, envelope_xml("pong", "urn:test:Pong"));
            }
            self.seen.push((from, op));
        }
    }

    fn quick_config() -> NetRuntimeConfig {
        NetRuntimeConfig {
            client: HttpClientConfig {
                retries: 1,
                backoff_base: Duration::from_millis(5),
                backoff_cap: Duration::from_millis(10),
                connect_timeout: Duration::from_millis(300),
                ..HttpClientConfig::default()
            },
            ..NetRuntimeConfig::default()
        }
    }

    #[test]
    fn two_nodes_exchange_envelopes_over_sockets() {
        let net = NetRuntime::spawn(
            vec![Ponger { seen: Vec::new() }, Ponger { seen: Vec::new() }],
            42,
            quick_config(),
        );
        net.send_local(NodeId(1), NodeId(0), envelope_xml("ping", "urn:test:Ping"));
        let nodes = net.shutdown_after(Duration::from_millis(700));
        // Node 0 saw the injected ping; node 1 got the pong over HTTP.
        assert!(nodes[0].protocol.seen.iter().any(|(f, op)| *f == NodeId(1) && op == "ping"));
        assert!(
            nodes[1].protocol.seen.iter().any(|(f, op)| *f == NodeId(0) && op == "pong"),
            "pong never arrived over the socket: {:?}",
            nodes[1].protocol.seen
        );
        assert_eq!(nodes[0].transport.posts_ok, 1);
        assert_eq!(nodes[0].transport.posts_failed, 0);
    }

    #[test]
    fn external_posts_reach_the_protocol() {
        let net = NetRuntime::spawn(vec![Ponger { seen: Vec::new() }], 7, quick_config());
        let outcome = net
            .post_external(NodeId(0), Some("urn:test:Ping"), &envelope_xml("hello", "urn:test:Ping"))
            .unwrap();
        assert_eq!(outcome.response.status, 202);
        let nodes = net.shutdown_after(Duration::from_millis(300));
        assert!(nodes[0].protocol.seen.iter().any(|(f, op)| *f == EXTERNAL_SENDER && op == "hello"));
    }

    #[test]
    fn refused_node_exercises_retry_and_failure_accounting() {
        let mut config = quick_config();
        config.refuse = vec![NodeId(1)];
        let net = NetRuntime::spawn(
            vec![Ponger { seen: Vec::new() }, Ponger { seen: Vec::new() }],
            13,
            config,
        );
        // Make node 0 believe node 1 pinged it; the pong gets refused.
        net.send_local(NodeId(1), NodeId(0), envelope_xml("ping", "urn:test:Ping"));
        let nodes = net.shutdown_after(Duration::from_millis(900));
        assert_eq!(nodes[0].transport.posts_failed, 1);
        assert!(
            nodes[0].transport.attempts >= 2,
            "refused post should have retried: {:?}",
            nodes[0].transport
        );
        assert!(nodes[1].protocol.seen.is_empty());
    }

    #[test]
    fn node_registry_collects_server_client_and_transport_families() {
        let net = NetRuntime::spawn(
            vec![Ponger { seen: Vec::new() }, Ponger { seen: Vec::new() }],
            42,
            quick_config(),
        );
        net.send_local(NodeId(1), NodeId(0), envelope_xml("ping", "urn:test:Ping"));
        let sender_side = net.registry_of(NodeId(0));
        let receiver_side = net.registry_of(NodeId(1));
        let nodes = net.shutdown_after(Duration::from_millis(700));
        assert_eq!(nodes[0].transport.posts_ok, 1);
        // The ping was injected locally, so the only HTTP traffic is the
        // pong: node 0's registry shows its client and transport counters,
        // node 1's shows the server that answered the post.
        let sent = sender_side.render();
        assert!(sent.contains("wsg_http_client_posts_total 1"), "{sent}");
        assert!(sent.contains("wsg_transport_posts_ok_total 1"), "{sent}");
        assert!(sent.contains("wsg_transport_posts_failed_total 0"), "{sent}");
        let received = receiver_side.render();
        assert!(received.contains("wsg_http_server_requests_total 1"), "{received}");
        assert!(received.contains("wsg_http_server_responses_total{class=\"2xx\"} 1"), "{received}");
    }

    #[test]
    fn unroutable_sends_are_counted_not_fatal() {
        struct SendsNowhere;
        impl Protocol for SendsNowhere {
            type Message = String;
            fn on_start(&mut self, ctx: &mut dyn Context<String>) {
                ctx.send(NodeId(999), envelope_xml("lost", "urn:test:Lost"));
            }
            fn on_message(&mut self, _: NodeId, _: String, _: &mut dyn Context<String>) {}
        }
        let net = NetRuntime::spawn(vec![SendsNowhere], 3, quick_config());
        let nodes = net.shutdown_after(Duration::from_millis(200));
        assert_eq!(nodes[0].transport.unroutable, 1);
        assert_eq!(nodes[0].transport.posts_ok, 0);
    }
}
