//! The networked node runtime: `wsg_net::threads::ThreadNet`'s twin with
//! loopback sockets instead of channels.
//!
//! Every `Protocol<Message = String>` node added to a [`NetRuntime`] gets
//! three things:
//!
//! * an HTTP **server** on `127.0.0.1:0` whose service parses each POSTed
//!   SOAP envelope and enqueues it on the node's inbox;
//! * a **node loop** thread identical in structure to the threaded
//!   runtime's (timers on wall-clock, deterministic per-node RNG), whose
//!   outgoing `ctx.send(to, xml)` calls go to...
//! * a **sender** thread owning a pooled, retrying [`SoapHttpClient`]
//!   that drains everything queued per destination into one POST — a
//!   `urn:ws-gossip:batch` wrapper when more than one envelope is
//!   waiting, the bare envelope (byte-identical to the unbatched wire
//!   format) when only one is (see [`crate::batch`] and DESIGN.md §12).
//!
//! Because the node's view of the world is still just [`Context`], the
//! gossip protocols run here byte-for-byte unchanged from the simulator —
//! only now a gossip round is real HTTP traffic that `tcpdump` would show.
//!
//! ## Dynamic membership
//!
//! The deployment is **live**: [`NetRuntime::add_node`] binds a socket and
//! starts a node at any point after construction, and
//! [`NetRuntime::remove_node`] / [`NetRuntime::crash`] take one away
//! again. Routing goes through a shared [`NodeDirectory`] — the address
//! table sender threads consult per envelope — so a removed node becomes
//! unroutable immediately and a joined one routable before its first
//! message. `crash` drops the node's listener *before* stopping its loop,
//! so peers see `ECONNREFUSED` mid-conversation exactly like a process
//! kill; their clients' connection pools evict the dead peer's sockets on
//! the first failed connect. The membership plane in `wsg_cluster` builds
//! its join/leave/failure-detection protocol directly on these primitives.
//!
//! ## Fault injection
//!
//! [`NetRuntimeConfig::refuse`] lists nodes that get an address but no
//! listener (the port is bound and immediately released): peers that pick
//! them as gossip targets see `ECONNREFUSED` and walk the client's
//! retry/backoff path, exactly like gossiping to a crashed process.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;

use wsg_net::sync::{AtomicUsize, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wsg_net::protocol::{Context, NodeId, Protocol, TimerTag};
use wsg_net::rng::{Pcg32, Rng64, SplitMix64};
use wsg_net::sync::Mutex;
use wsg_net::time::{SimDuration, SimTime};
use wsg_obs::{Counter, HistogramMetric, Registry};
use wsg_soap::batch::{write_batch, BatchItem, BATCH_ACTION};
use wsg_soap::{Envelope, Fault, FaultCode};

use crate::batch::{BatchConfig, OutboundHandle, SenderQueues, WakeSignal};
use crate::client::{HttpClientConfig, PostError, PostOutcome, SoapHttpClient};
use crate::server::{
    HttpServerConfig, SoapHttpServer, SoapReply, SoapRequest, Service, NODE_HEADER,
};

/// The request target every gossip node serves.
pub const GOSSIP_TARGET: &str = "/gossip";

/// `from` reported to a protocol when the sender did not identify itself
/// with the [`NODE_HEADER`] header (e.g. an external test client).
pub const EXTERNAL_SENDER: NodeId = NodeId(usize::MAX);

/// Tuning knobs for [`NetRuntime`].
#[derive(Debug, Clone, Default)]
pub struct NetRuntimeConfig {
    /// Client-side (sender thread) configuration, per node.
    pub client: HttpClientConfig,
    /// Server-side configuration, per node.
    pub server: HttpServerConfig,
    /// Nodes that get an address but no listener: connections to them are
    /// refused, exercising peers' retry/backoff paths.
    pub refuse: Vec<NodeId>,
    /// Sender-side envelope-coalescing caps, per node.
    pub batch: BatchConfig,
}

/// Transport-level counters a node's sender thread accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// HTTP POSTs that reached their destination (any HTTP status). With
    /// batching one POST can carry many envelopes — see `msgs_ok`.
    pub posts_ok: u64,
    /// HTTP POSTs abandoned after exhausting retries.
    pub posts_failed: u64,
    /// Envelopes delivered across all successful POSTs (≥ `posts_ok`).
    pub msgs_ok: u64,
    /// Envelopes lost in failed POSTs.
    pub msgs_failed: u64,
    /// POSTs avoided by coalescing: `msgs_ok - posts_ok`.
    pub posts_saved: u64,
    /// Connect attempts across all posts (≥ posts when retries happened).
    pub attempts: u64,
    /// Sends to node ids absent from the directory (dropped).
    pub unroutable: u64,
}

/// A node's final state after shutdown: protocol + transport counters.
#[derive(Debug)]
pub struct NetNode<P> {
    /// The protocol state machine in its final state.
    pub protocol: P,
    /// What its sender thread saw at the transport level.
    pub transport: TransportStats,
}

/// The live routing table: which node ids are deployed right now, and
/// where.
///
/// Shared (`Arc`) between the runtime and every sender thread. Entries
/// appear when a node is added and vanish when it is removed or crashed,
/// so routing decisions always reflect the current deployment — there is
/// no rebuild-and-redistribute step. Node ids are dense and never reused;
/// [`NodeDirectory::capacity`] is the all-time id ceiling (what
/// [`Context::node_count`] reports), [`NodeDirectory::len`] the number
/// currently routable.
#[derive(Debug, Default)]
pub struct NodeDirectory {
    entries: Mutex<BTreeMap<NodeId, SocketAddr>>,
    capacity: AtomicUsize,
}

impl NodeDirectory {
    /// Where `id` is currently listening, if deployed.
    pub fn addr_of(&self, id: NodeId) -> Option<SocketAddr> {
        self.entries.lock().get(&id).copied()
    }

    /// Every currently-routable node id, ascending.
    pub fn live(&self) -> Vec<NodeId> {
        self.entries.lock().keys().copied().collect()
    }

    /// Whether `id` is currently routable.
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.lock().contains_key(&id)
    }

    /// Number of currently-routable nodes.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether no node is currently routable.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// One past the highest node id ever deployed (ids are never reused).
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    fn insert(&self, id: NodeId, addr: SocketAddr) {
        self.entries.lock().insert(id, addr);
        self.capacity.fetch_max(id.0 + 1, Ordering::AcqRel);
    }

    fn remove(&self, id: NodeId) -> Option<SocketAddr> {
        self.entries.lock().remove(&id)
    }
}

enum Inbox {
    Message { from: NodeId, xml: String },
    Stop,
}

struct NetCtx<'a> {
    start: Instant,
    id: NodeId,
    node_count: usize,
    rng: &'a mut Pcg32,
    outbox: Vec<(NodeId, String)>,
    timer_requests: Vec<(SimDuration, TimerTag)>,
}

impl Context<String> for NetCtx<'_> {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }
    fn self_id(&self) -> NodeId {
        self.id
    }
    fn node_count(&self) -> usize {
        self.node_count
    }
    fn send(&mut self, to: NodeId, msg: String) {
        self.outbox.push((to, msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
        self.timer_requests.push((delay, tag));
    }
    fn rng(&mut self) -> &mut dyn Rng64 {
        self.rng
    }
}

/// One deployed (or formerly deployed) node's runtime plumbing.
struct NodeSlot<P> {
    inbox: Sender<Inbox>,
    node_handle: Option<JoinHandle<P>>,
    sender_handle: Option<JoinHandle<TransportStats>>,
    server: Option<SoapHttpServer>,
    registry: Arc<Registry>,
    outbound: OutboundHandle,
}

/// A live network of protocol nodes on loopback HTTP sockets.
pub struct NetRuntime<P: Protocol<Message = String>> {
    directory: Arc<NodeDirectory>,
    addrs: Vec<SocketAddr>,
    slots: Vec<NodeSlot<P>>,
    external: SoapHttpClient,
    seeder: SplitMix64,
    config: NetRuntimeConfig,
    start: Instant,
}

impl<P> NetRuntime<P>
where
    P: Protocol<Message = String> + Send + 'static,
{
    /// An empty runtime: no nodes yet, ready for [`NetRuntime::add_node`].
    ///
    /// `seed` drives every subsequent node's protocol RNG and client
    /// backoff jitter through one `SplitMix64` chain, in add order (the
    /// external client's jitter seed is drawn here, first).
    pub fn new(seed: u64, config: NetRuntimeConfig) -> Self {
        let mut seeder = SplitMix64::new(seed);
        let external = SoapHttpClient::new(seeder.next(), config.client.clone());
        NetRuntime {
            directory: Arc::new(NodeDirectory::default()),
            addrs: Vec::new(),
            slots: Vec::new(),
            external,
            seeder,
            config,
            start: Instant::now(),
        }
    }

    /// Bind one loopback socket per protocol and start all nodes.
    ///
    /// All listeners are bound (and entered into the directory) before
    /// any node runs, so the routing table is complete from the first
    /// gossip round — the static-fleet guarantee dynamic joins forgo.
    ///
    /// # Panics
    ///
    /// Panics if a loopback socket cannot be bound — a networked runtime
    /// without a network has no useful degraded mode.
    pub fn spawn(protocols: Vec<P>, seed: u64, config: NetRuntimeConfig) -> Self {
        let mut net = Self::new(seed, config);
        // Phase 1: bind everything so the directory is complete.
        let bound: Vec<(NodeId, Option<TcpListener>)> =
            protocols.iter().map(|_| net.bind_slot()).collect();
        // Phase 2: start the nodes against the full table.
        for (protocol, (id, listener)) in protocols.into_iter().zip(bound) {
            net.start_slot(id, listener, protocol, Vec::new());
        }
        net
    }

    /// Bind a socket, deploy `protocol` on it, and start its threads.
    ///
    /// The node is routable (directory entry present) before its
    /// `on_start` runs. Returns the dense, never-reused id assigned to it.
    ///
    /// # Panics
    ///
    /// Panics if a loopback socket cannot be bound.
    pub fn add_node(&mut self, protocol: P) -> NodeId {
        self.add_node_routed(protocol, Vec::new())
    }

    /// Like [`NetRuntime::add_node`], but serve extra POST routes on the
    /// node's socket: a request whose target path equals a route's target
    /// is answered by that route's service instead of being enqueued on
    /// the protocol inbox. `wsg_cluster` uses this to give every node a
    /// `/membership` endpoint beside its `/gossip` one.
    pub fn add_node_routed(&mut self, protocol: P, routes: Vec<(String, Service)>) -> NodeId {
        let (id, listener) = self.bind_slot();
        self.start_slot(id, listener, protocol, routes);
        id
    }

    /// Assign the next id, bind its listener, and publish its address.
    fn bind_slot(&mut self) -> (NodeId, Option<TcpListener>) {
        let id = NodeId(self.addrs.len());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        let addr = listener.local_addr().expect("listener local addr");
        self.addrs.push(addr);
        self.directory.insert(id, addr);
        // Keep the address, drop the listener: ECONNREFUSED.
        let listener = if self.config.refuse.contains(&id) { None } else { Some(listener) };
        (id, listener)
    }

    /// Start server, sender and node-loop threads for a bound slot. RNG
    /// draws happen here, in add order, so a given seed always produces
    /// the same per-node streams for the same add sequence.
    fn start_slot(
        &mut self,
        id: NodeId,
        listener: Option<TcpListener>,
        protocol: P,
        routes: Vec<(String, Service)>,
    ) {
        let index = id.0;
        let mut rng = Pcg32::new(self.seeder.next(), index as u64);
        let client_seed = self.seeder.next();
        // One registry per node, shared by its server, its sender
        // thread's client, and its transport counters — `GET /metrics`
        // on the node's socket shows all of them.
        let registry = Arc::new(Registry::new());
        let (inbox_tx, inbox_rx): (Sender<Inbox>, Receiver<Inbox>) = channel();

        // Server: route-matched targets go to their service; everything
        // else decodes and enqueues for the node's own thread.
        let server = listener.map(|listener| {
            let inbox = inbox_tx.clone();
            let service: Service = Arc::new(move |request: SoapRequest| {
                for (target, route) in &routes {
                    if request.target == *target {
                        return route(request);
                    }
                }
                let from = request.from_node.map(NodeId).unwrap_or(EXTERNAL_SENDER);
                inbox
                    .send(Inbox::Message { from, xml: request.raw })
                    .map_err(|_| Fault::new(FaultCode::Receiver, "node is shut down"))?;
                Ok(SoapReply::Accepted)
            });
            SoapHttpServer::serve_observed(
                listener,
                service,
                self.config.server.clone(),
                Arc::clone(&registry),
            )
            .expect("start node http server")
        });

        // Sender thread: one pooled client per node draining the shared
        // per-destination queues into batched POSTs, routing through the
        // live directory so removed peers become unroutable immediately.
        let queues = Arc::new(SenderQueues::default());
        let signal = Arc::new(WakeSignal::new());
        let outbound = OutboundHandle::new(Arc::clone(&queues), Arc::clone(&signal));
        let client = SoapHttpClient::new_observed(client_seed, self.config.client.clone(), &registry);
        let transport = TransportMetrics::new(&registry);
        let directory = Arc::clone(&self.directory);
        let batch_config = self.config.batch.clone();
        let sender_handle = std::thread::Builder::new()
            .name(format!("wsg-net-sender-{index}"))
            .spawn(move || {
                sender_loop(index, signal, queues, batch_config, client, directory, transport)
            })
            .expect("spawn sender thread");

        // Node loop.
        let directory = Arc::clone(&self.directory);
        let start = self.start;
        let out = outbound.clone();
        let node_handle = std::thread::Builder::new()
            .name(format!("wsg-net-node-{index}"))
            .spawn(move || run_node(protocol, id, directory, inbox_rx, out, &mut rng, start))
            .expect("spawn node thread");

        self.slots.push(NodeSlot {
            inbox: inbox_tx,
            node_handle: Some(node_handle),
            sender_handle: Some(sender_handle),
            server,
            registry,
            outbound,
        });
    }

    /// Gracefully stop node `id`: its loop drains, its queued envelopes
    /// are sent, then its listener closes. Returns its final state, or
    /// [`None`] if `id` was never deployed or is already stopped.
    pub fn remove_node(&mut self, id: NodeId) -> Option<NetNode<P>> {
        self.stop_node(id, true)
    }

    /// Crash-stop node `id`: its listener closes **first**, so peers mid-
    /// conversation see connection-refused (and their pools evict its
    /// sockets), then the loop is killed with its outbound queue drained
    /// best-effort. Returns the final state for post-mortem assertions.
    pub fn crash(&mut self, id: NodeId) -> Option<NetNode<P>> {
        self.stop_node(id, false)
    }

    fn stop_node(&mut self, id: NodeId, graceful: bool) -> Option<NetNode<P>> {
        let slot = self.slots.get_mut(id.0)?;
        let node_handle = slot.node_handle.take()?;
        self.directory.remove(id);
        if !graceful {
            if let Some(mut server) = slot.server.take() {
                server.shutdown();
            }
        }
        // wsg_lint: allow(E2) — a closed inbox means the node loop already exited; Stop is advisory
        let _ = slot.inbox.send(Inbox::Stop);
        let protocol = node_handle.join().expect("node thread panicked");
        let transport = slot
            .sender_handle
            .take()
            .map(|h| h.join().expect("sender thread panicked"))
            .unwrap_or_default();
        if let Some(mut server) = slot.server.take() {
            server.shutdown();
        }
        Some(NetNode { protocol, transport })
    }

    /// The shared routing table (what sender threads consult per send).
    pub fn directory(&self) -> Arc<NodeDirectory> {
        Arc::clone(&self.directory)
    }

    /// The socket address node `id` serves, served, or would serve (if
    /// refused). Stable across removal so tests can probe dead ports.
    pub fn addr_of(&self, id: NodeId) -> SocketAddr {
        self.addrs[id.0]
    }

    /// Node `id`'s metric registry — what its `GET /metrics` renders.
    /// Refused nodes have a registry too (their sender thread still
    /// accumulates transport counters); it just isn't scrapeable.
    pub fn registry_of(&self, id: NodeId) -> Arc<Registry> {
        Arc::clone(&self.slots[id.0].registry)
    }

    /// A handle on node `id`'s outbound path: lets other producers (the
    /// `wsg_cluster` heartbeat pump) piggyback messages onto batches the
    /// node's sender is already forming, and hook connection-refused
    /// notifications. Valid even after the node stops — piggybacks then
    /// simply find no forming batch.
    pub fn outbound_of(&self, id: NodeId) -> OutboundHandle {
        self.slots[id.0].outbound.clone()
    }

    /// Total nodes ever deployed (the id ceiling), including removed ones.
    pub fn node_count(&self) -> usize {
        self.addrs.len()
    }

    /// Nodes currently deployed and routable.
    pub fn live_count(&self) -> usize {
        self.directory.len()
    }

    /// POST an envelope to node `to` over a real socket, as an external
    /// client (no node-id header, so the protocol sees
    /// [`EXTERNAL_SENDER`]). Targets `to`'s historical address, so posting
    /// to a crashed node fails like any dead peer.
    ///
    /// # Errors
    ///
    /// [`PostError`] if the node is unreachable after retries.
    pub fn post_external(
        &self,
        to: NodeId,
        action: Option<&str>,
        xml: &str,
    ) -> Result<PostOutcome, PostError> {
        self.external.post(self.addrs[to.0], GOSSIP_TARGET, action, &[], xml.as_bytes())
    }

    /// Inject a message into node `to`'s inbox directly (no socket), as if
    /// sent by `from`. Useful for deterministic unit tests; integration
    /// tests should prefer [`NetRuntime::post_external`]. Silently dropped
    /// if `to` was removed.
    pub fn send_local(&self, from: NodeId, to: NodeId, xml: String) {
        if let Some(slot) = self.slots.get(to.0) {
            // wsg_lint: allow(E2) — documented above: messages to removed nodes are silently dropped
            let _ = slot.inbox.send(Inbox::Message { from, xml });
        }
    }

    /// Let the network run for `duration` of wall-clock time, then stop.
    pub fn shutdown_after(self, duration: Duration) -> Vec<NetNode<P>> {
        std::thread::sleep(duration);
        self.shutdown()
    }

    /// Stop all still-deployed nodes and return their final states in id
    /// order (nodes already removed or crashed are not re-reported).
    ///
    /// Ordering matters: node loops stop first (dropping their outbound
    /// queues), then sender threads drain what was already queued, then
    /// the servers close — so no in-flight envelope is lost to shutdown.
    pub fn shutdown(mut self) -> Vec<NetNode<P>> {
        for slot in &self.slots {
            if slot.node_handle.is_some() {
                // wsg_lint: allow(E2) — a closed inbox means the node loop already exited; Stop is advisory
                let _ = slot.inbox.send(Inbox::Stop);
            }
        }
        let protocols: Vec<Option<P>> = self
            .slots
            .iter_mut()
            .map(|slot| slot.node_handle.take().map(|h| h.join().expect("node thread panicked")))
            .collect();
        let transports: Vec<TransportStats> = self
            .slots
            .iter_mut()
            .map(|slot| {
                slot.sender_handle
                    .take()
                    .map(|h| h.join().expect("sender thread panicked"))
                    .unwrap_or_default()
            })
            .collect();
        for slot in &mut self.slots {
            if let Some(mut server) = slot.server.take() {
                server.shutdown();
            }
        }
        protocols
            .into_iter()
            .zip(transports)
            .filter_map(|(protocol, transport)| {
                protocol.map(|protocol| NetNode { protocol, transport })
            })
            .collect()
    }
}

/// Live `wsg_transport_*` counters mirrored into a node's registry by
/// its sender thread, alongside the `TransportStats` it returns on join.
struct TransportMetrics {
    posts_ok: Arc<Counter>,
    posts_failed: Arc<Counter>,
    batch_msgs: Arc<HistogramMetric>,
    posts_saved: Arc<Counter>,
    attempts: Arc<Counter>,
    unroutable: Arc<Counter>,
}

impl TransportMetrics {
    fn new(registry: &Registry) -> Self {
        TransportMetrics {
            posts_ok: registry.register_counter(
                "wsg_transport_posts_ok_total",
                "HTTP POSTs this node's sender completed successfully",
            ),
            posts_failed: registry.register_counter(
                "wsg_transport_posts_failed_total",
                "HTTP POSTs that failed after all retries",
            ),
            batch_msgs: registry.register_histogram(
                "wsg_transport_batch_msgs",
                "Envelopes coalesced into each successful POST",
            ),
            posts_saved: registry.register_counter(
                "wsg_transport_posts_saved_total",
                "POSTs avoided by coalescing queued envelopes into batches",
            ),
            attempts: registry.register_counter(
                "wsg_transport_attempts_total",
                "Connection attempts made by the node's sender thread",
            ),
            unroutable: registry.register_counter(
                "wsg_transport_unroutable_total",
                "Outbound envelopes addressed to node ids absent from the directory",
            ),
        }
    }
}

fn sender_loop(
    index: usize,
    signal: Arc<WakeSignal>,
    queues: Arc<SenderQueues>,
    config: BatchConfig,
    client: SoapHttpClient,
    directory: Arc<NodeDirectory>,
    metrics: TransportMetrics,
) -> TransportStats {
    let mut stats = TransportStats::default();
    let node_header = [(NODE_HEADER.to_string(), index.to_string())];
    let mut scratch = String::new();
    loop {
        // Park until there may be work. Wakes coalesce in the signal's
        // single token: while we were busy posting the last drain,
        // producers kept queueing — one pass covers them all, and that
        // backlog is exactly what forms multi-message batches. Under
        // light load the queue holds a single envelope and it is flushed
        // immediately (flush-on-idle).
        signal.wait();
        // Read the stop flag *before* draining (not after): everything
        // queued before `stop()` is then covered by this drain, so no
        // envelope is stranded. This ordering is model-checked — see
        // `batch::model_tests`.
        let stopping = signal.stopping();
        drain_queues(&queues, &config, &client, &directory, &metrics, &mut stats, &node_header, &mut scratch);
        if stopping {
            return stats;
        }
    }
}

#[allow(clippy::too_many_arguments)] // one call site; a struct would just rename the argument list
fn drain_queues(
    queues: &SenderQueues,
    config: &BatchConfig,
    client: &SoapHttpClient,
    directory: &NodeDirectory,
    metrics: &TransportMetrics,
    stats: &mut TransportStats,
    node_header: &[(String, String)],
    scratch: &mut String,
) {
    while let Some((to, batch)) = queues.pop_batch(config) {
        let count = batch.len() as u64;
        // Route through the live directory: a peer removed after these
        // envelopes were queued is dropped here instead of dialed.
        let Some(addr) = directory.addr_of(to) else {
            stats.unroutable += count;
            metrics.unroutable.add(count);
            continue;
        };
        let outcome = if let [only] = batch.as_slice() {
            // A lone message is posted bare — byte-identical to the
            // unbatched wire format (no wrapper, same target and action).
            let target = only.target.as_deref().unwrap_or(GOSSIP_TARGET);
            let action = Envelope::parse(&only.xml)
                .ok()
                .and_then(|e| e.addressing().action().map(str::to_string));
            client.post(addr, target, action.as_deref(), node_header, only.xml.as_bytes())
        } else {
            let items: Vec<BatchItem<'_>> = batch
                .iter()
                .map(|m| BatchItem { target: m.target.as_deref(), xml: &m.xml })
                .collect();
            write_batch(&items, scratch);
            client.post(addr, GOSSIP_TARGET, Some(BATCH_ACTION), node_header, scratch.as_bytes())
        };
        match outcome {
            Ok(outcome) => {
                stats.posts_ok += 1;
                stats.msgs_ok += count;
                stats.posts_saved += count - 1;
                stats.attempts += u64::from(outcome.attempts);
                metrics.posts_ok.inc();
                metrics.batch_msgs.observe(count);
                metrics.posts_saved.add(count - 1);
                metrics.attempts.add(u64::from(outcome.attempts));
            }
            Err(err) => {
                stats.posts_failed += 1;
                stats.msgs_failed += count;
                stats.attempts += u64::from(err.attempts);
                metrics.posts_failed.inc();
                metrics.attempts.add(u64::from(err.attempts));
                // Refused means nobody is listening on that socket; let
                // whoever registered a hook (the membership plane) know.
                if err.last.kind() == std::io::ErrorKind::ConnectionRefused {
                    queues.notify_unreachable(addr);
                }
            }
        }
    }
}

fn run_node<P>(
    mut protocol: P,
    id: NodeId,
    directory: Arc<NodeDirectory>,
    rx: Receiver<Inbox>,
    out: OutboundHandle,
    rng: &mut Pcg32,
    start: Instant,
) -> P
where
    P: Protocol<Message = String>,
{
    let mut timers: Vec<(Instant, TimerTag)> = Vec::new();

    let dispatch = |protocol: &mut P,
                    timers: &mut Vec<(Instant, TimerTag)>,
                    rng: &mut Pcg32,
                    event: Option<(NodeId, String)>,
                    fired: Option<TimerTag>| {
        let mut ctx = NetCtx {
            start,
            id,
            node_count: directory.capacity(),
            rng,
            outbox: Vec::new(),
            timer_requests: Vec::new(),
        };
        match (event, fired) {
            (Some((from, msg)), _) => protocol.on_message(from, msg, &mut ctx),
            (None, Some(tag)) => protocol.on_timer(tag, &mut ctx),
            (None, None) => protocol.on_start(&mut ctx),
        }
        let NetCtx { outbox, timer_requests, .. } = ctx;
        for (to, xml) in outbox {
            out.send(to, xml);
        }
        for (delay, tag) in timer_requests {
            let fire_at = Instant::now() + Duration::from_micros(delay.as_micros());
            timers.push((fire_at, tag));
            timers.sort_by_key(|(at, _)| *at);
        }
    };

    dispatch(&mut protocol, &mut timers, rng, None, None); // on_start

    loop {
        let now = Instant::now();
        while let Some(&(fire_at, tag)) = timers.first() {
            if fire_at > now {
                break;
            }
            timers.remove(0);
            dispatch(&mut protocol, &mut timers, rng, None, Some(tag));
        }
        let timeout = timers
            .first()
            .map(|(at, _)| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Inbox::Message { from, xml }) => {
                dispatch(&mut protocol, &mut timers, rng, Some((from, xml)), None);
            }
            Ok(Inbox::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    // The sender drains what is queued, then exits — an explicit token,
    // not channel disconnect, so outstanding OutboundHandle clones (e.g.
    // a cluster pump's) can never wedge shutdown.
    out.stop();
    protocol
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_soap::MessageHeaders;
    use wsg_xml::Element;

    fn envelope_xml(op: &str, action: &str) -> String {
        Envelope::request(
            MessageHeaders::request("http://peer/gossip", action),
            Element::text_node("op", op),
        )
        .to_xml()
    }

    /// Replies "pong" to every "ping"; records everything it saw.
    struct Ponger {
        seen: Vec<(NodeId, String)>,
    }

    impl Protocol for Ponger {
        type Message = String;
        fn on_message(&mut self, from: NodeId, msg: String, ctx: &mut dyn Context<String>) {
            let op = Envelope::parse(&msg)
                .ok()
                .and_then(|e| e.body().map(|b| b.text()))
                .unwrap_or_default();
            if op == "ping" && from != EXTERNAL_SENDER {
                ctx.send(from, envelope_xml("pong", "urn:test:Pong"));
            }
            self.seen.push((from, op));
        }
    }

    fn quick_config() -> NetRuntimeConfig {
        NetRuntimeConfig {
            client: HttpClientConfig {
                retries: 1,
                backoff_base: Duration::from_millis(5),
                backoff_cap: Duration::from_millis(10),
                connect_timeout: Duration::from_millis(300),
                ..HttpClientConfig::default()
            },
            ..NetRuntimeConfig::default()
        }
    }

    #[test]
    fn two_nodes_exchange_envelopes_over_sockets() {
        let net = NetRuntime::spawn(
            vec![Ponger { seen: Vec::new() }, Ponger { seen: Vec::new() }],
            42,
            quick_config(),
        );
        net.send_local(NodeId(1), NodeId(0), envelope_xml("ping", "urn:test:Ping"));
        let nodes = net.shutdown_after(Duration::from_millis(700));
        // Node 0 saw the injected ping; node 1 got the pong over HTTP.
        assert!(nodes[0].protocol.seen.iter().any(|(f, op)| *f == NodeId(1) && op == "ping"));
        assert!(
            nodes[1].protocol.seen.iter().any(|(f, op)| *f == NodeId(0) && op == "pong"),
            "pong never arrived over the socket: {:?}",
            nodes[1].protocol.seen
        );
        assert_eq!(nodes[0].transport.posts_ok, 1);
        assert_eq!(nodes[0].transport.posts_failed, 0);
    }

    #[test]
    fn external_posts_reach_the_protocol() {
        let net = NetRuntime::spawn(vec![Ponger { seen: Vec::new() }], 7, quick_config());
        let outcome = net
            .post_external(NodeId(0), Some("urn:test:Ping"), &envelope_xml("hello", "urn:test:Ping"))
            .unwrap();
        assert_eq!(outcome.response.status, 202);
        let nodes = net.shutdown_after(Duration::from_millis(300));
        assert!(nodes[0].protocol.seen.iter().any(|(f, op)| *f == EXTERNAL_SENDER && op == "hello"));
    }

    #[test]
    fn refused_node_exercises_retry_and_failure_accounting() {
        let mut config = quick_config();
        config.refuse = vec![NodeId(1)];
        let net = NetRuntime::spawn(
            vec![Ponger { seen: Vec::new() }, Ponger { seen: Vec::new() }],
            13,
            config,
        );
        // Make node 0 believe node 1 pinged it; the pong gets refused.
        net.send_local(NodeId(1), NodeId(0), envelope_xml("ping", "urn:test:Ping"));
        let nodes = net.shutdown_after(Duration::from_millis(900));
        assert_eq!(nodes[0].transport.posts_failed, 1);
        assert!(
            nodes[0].transport.attempts >= 2,
            "refused post should have retried: {:?}",
            nodes[0].transport
        );
        assert!(nodes[1].protocol.seen.is_empty());
    }

    #[test]
    fn node_registry_collects_server_client_and_transport_families() {
        let net = NetRuntime::spawn(
            vec![Ponger { seen: Vec::new() }, Ponger { seen: Vec::new() }],
            42,
            quick_config(),
        );
        net.send_local(NodeId(1), NodeId(0), envelope_xml("ping", "urn:test:Ping"));
        let sender_side = net.registry_of(NodeId(0));
        let receiver_side = net.registry_of(NodeId(1));
        let nodes = net.shutdown_after(Duration::from_millis(700));
        assert_eq!(nodes[0].transport.posts_ok, 1);
        // The ping was injected locally, so the only HTTP traffic is the
        // pong: node 0's registry shows its client and transport counters,
        // node 1's shows the server that answered the post.
        let sent = sender_side.render();
        assert!(sent.contains("wsg_http_client_posts_total 1"), "{sent}");
        assert!(sent.contains("wsg_transport_posts_ok_total 1"), "{sent}");
        assert!(sent.contains("wsg_transport_posts_failed_total 0"), "{sent}");
        let received = receiver_side.render();
        assert!(received.contains("wsg_http_server_requests_total 1"), "{received}");
        assert!(received.contains("wsg_http_server_responses_total{class=\"2xx\"} 1"), "{received}");
    }

    #[test]
    fn unroutable_sends_are_counted_not_fatal() {
        struct SendsNowhere;
        impl Protocol for SendsNowhere {
            type Message = String;
            fn on_start(&mut self, ctx: &mut dyn Context<String>) {
                ctx.send(NodeId(999), envelope_xml("lost", "urn:test:Lost"));
            }
            fn on_message(&mut self, _: NodeId, _: String, _: &mut dyn Context<String>) {}
        }
        let net = NetRuntime::spawn(vec![SendsNowhere], 3, quick_config());
        let nodes = net.shutdown_after(Duration::from_millis(200));
        assert_eq!(nodes[0].transport.unroutable, 1);
        assert_eq!(nodes[0].transport.posts_ok, 0);
    }

    #[test]
    fn nodes_join_a_running_deployment() {
        let mut net = NetRuntime::new(51, quick_config());
        let a = net.add_node(Ponger { seen: Vec::new() });
        assert_eq!((net.node_count(), net.live_count()), (1, 1));
        let b = net.add_node(Ponger { seen: Vec::new() });
        assert_eq!((net.node_count(), net.live_count()), (2, 2));
        assert_ne!(net.addr_of(a), net.addr_of(b));
        // The late joiner is immediately routable: a ping to the founder
        // comes back to it over a real socket.
        net.send_local(b, a, envelope_xml("ping", "urn:test:Ping"));
        let nodes = net.shutdown_after(Duration::from_millis(700));
        assert!(
            nodes[b.0].protocol.seen.iter().any(|(f, op)| *f == a && op == "pong"),
            "joiner never got the pong: {:?}",
            nodes[b.0].protocol.seen
        );
    }

    #[test]
    fn crashed_node_is_refused_and_unrouted() {
        let mut net = NetRuntime::spawn(
            vec![Ponger { seen: Vec::new() }, Ponger { seen: Vec::new() }],
            29,
            quick_config(),
        );
        let crashed = net.crash(NodeId(1)).expect("node 1 was deployed");
        assert!(crashed.protocol.seen.is_empty());
        assert_eq!(net.live_count(), 1);
        assert!(net.crash(NodeId(1)).is_none(), "second crash is a no-op");
        // Its port now refuses connections...
        assert!(net.post_external(NodeId(1), None, &envelope_xml("x", "urn:test:X")).is_err());
        // ...and envelopes queued for it are dropped as unroutable.
        net.send_local(NodeId(1), NodeId(0), envelope_xml("ping", "urn:test:Ping"));
        let nodes = net.shutdown_after(Duration::from_millis(700));
        assert_eq!(nodes.len(), 1, "only the survivor reports");
        assert_eq!(nodes[0].transport.unroutable, 1, "pong to the crashed peer dropped");
        assert_eq!(nodes[0].transport.posts_failed, 0, "dropped before dialing");
    }

    #[test]
    fn batched_posts_unbundle_into_individual_dispatches() {
        let route_hits: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let hits = Arc::clone(&route_hits);
        let route: Service = Arc::new(move |request: SoapRequest| {
            hits.lock().push(request.envelope.body().map(|b| b.text()).unwrap_or_default());
            Ok(SoapReply::Accepted)
        });
        let mut net = NetRuntime::new(99, quick_config());
        let id = net.add_node_routed(
            Ponger { seen: Vec::new() },
            vec![("/membership".to_string(), route)],
        );
        let xmls = [
            envelope_xml("a", "urn:test:A"),
            envelope_xml("b", "urn:test:B"),
            envelope_xml("hb", "urn:test:HB"),
        ];
        let items = vec![
            BatchItem { target: None, xml: &xmls[0] },
            BatchItem { target: None, xml: &xmls[1] },
            BatchItem { target: Some("/membership"), xml: &xmls[2] },
        ];
        let mut wire = String::new();
        write_batch(&items, &mut wire);
        let outcome = net.post_external(id, Some(BATCH_ACTION), &wire).unwrap();
        assert_eq!(outcome.response.status, 202, "one 202 for the whole batch");
        let nodes = net.shutdown_after(Duration::from_millis(300));
        // The two untargeted envelopes reached the inbox in order; the
        // piggybacked one was routed to /membership instead.
        let ops: Vec<&str> = nodes[0].protocol.seen.iter().map(|(_, op)| op.as_str()).collect();
        assert_eq!(ops, vec!["a", "b"]);
        assert_eq!(*route_hits.lock(), vec!["hb".to_string()]);
    }

    #[test]
    fn burst_sends_coalesce_with_exact_message_accounting() {
        enum Role {
            Burst,
            Sink(Vec<String>),
        }
        impl Protocol for Role {
            type Message = String;
            fn on_start(&mut self, ctx: &mut dyn Context<String>) {
                if matches!(self, Role::Burst) {
                    for n in 0..8 {
                        ctx.send(NodeId(1), envelope_xml(&format!("burst-{n}"), "urn:test:Burst"));
                    }
                }
            }
            fn on_message(&mut self, _from: NodeId, msg: String, _ctx: &mut dyn Context<String>) {
                if let Role::Sink(seen) = self {
                    let op = Envelope::parse(&msg)
                        .ok()
                        .and_then(|e| e.body().map(|b| b.text()))
                        .unwrap_or_default();
                    seen.push(op);
                }
            }
        }
        let net = NetRuntime::spawn(vec![Role::Burst, Role::Sink(Vec::new())], 11, quick_config());
        let registry = net.registry_of(NodeId(0));
        let nodes = net.shutdown_after(Duration::from_millis(700));
        let transport = nodes[0].transport;
        assert_eq!(transport.msgs_ok, 8, "every envelope delivered: {transport:?}");
        assert!(
            (1..=8).contains(&transport.posts_ok),
            "posts bounded by message count: {transport:?}"
        );
        assert_eq!(transport.posts_saved, transport.msgs_ok - transport.posts_ok);
        let Role::Sink(seen) = &nodes[1].protocol else {
            panic!("node 1 is the sink");
        };
        // FIFO per peer survives coalescing: delivery order == send order,
        // whatever batch boundaries the drain produced.
        let want: Vec<String> = (0..8).map(|n| format!("burst-{n}")).collect();
        assert_eq!(*seen, want);
        let rendered = registry.render();
        assert!(rendered.contains("wsg_transport_batch_msgs_count"), "{rendered}");
        assert!(rendered.contains("wsg_transport_posts_saved_total"), "{rendered}");
    }

    #[test]
    fn extra_routes_are_served_beside_the_inbox() {
        let route: Service = Arc::new(|request: SoapRequest| {
            assert_eq!(request.target, "/membership");
            Ok(SoapReply::Accepted)
        });
        let mut net = NetRuntime::new(77, quick_config());
        let id = net.add_node_routed(
            Ponger { seen: Vec::new() },
            vec![("/membership".to_string(), route)],
        );
        let client = SoapHttpClient::new(5, HttpClientConfig::default());
        let xml = envelope_xml("probe", "urn:test:Probe");
        let outcome = client
            .post(net.addr_of(id), "/membership", None, &[], xml.as_bytes())
            .unwrap();
        assert_eq!(outcome.response.status, 202);
        // The routed request must NOT have reached the protocol inbox.
        let nodes = net.shutdown_after(Duration::from_millis(200));
        assert!(
            nodes[0].protocol.seen.is_empty(),
            "routed request leaked into the inbox: {:?}",
            nodes[0].protocol.seen
        );
    }
}
