//! The SOAP-over-HTTP endpoint: accept loop, bounded worker pool,
//! keep-alive connections and fault mapping.
//!
//! [`SoapHttpServer`] owns one `TcpListener` plus a fixed worker pool (the
//! same bounded-pool idiom as `wsg_net::threads`). The accept thread hands
//! connections to a `sync_channel` whose depth bounds the backlog; workers
//! pull from the shared receiver and run the connection until it closes,
//! idles out, or the server shuts down.
//!
//! Every POSTed body is parsed as a SOAP [`Envelope`] and handed to the
//! [`Service`] closure. The HTTP status mapping follows the SOAP 1.2 HTTP
//! binding:
//!
//! | service outcome              | HTTP response                        |
//! |------------------------------|--------------------------------------|
//! | `Ok(SoapReply::Accepted)`    | `202 Accepted`, empty body           |
//! | `Ok(SoapReply::Envelope(_))` | `200 OK`, response envelope          |
//! | `Err(Fault)`                 | `500`, fault envelope in the body    |
//! | body is not an envelope      | `400`, `Sender` fault envelope       |
//! | `GET /metrics`               | `200`, metric registry exposition    |
//! | `GET` anything else          | `404 Not Found`                      |
//! | other method                 | `405`, `Allow` from the route table  |
//! | unparseable HTTP             | `400 Bad Request`, connection closed |

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wsg_net::sync::Mutex;
use wsg_obs::{Counter, Family, HistogramMetric, Registry};
use wsg_soap::handler::Direction;
use wsg_soap::{Envelope, Fault, FaultCode, HandlerChain, MessageHeaders};

use crate::message::Response;
use crate::parser::{Parsed, RequestParser};

/// Content type of every SOAP 1.2 message on the wire.
pub const SOAP_CONTENT_TYPE: &str = "application/soap+xml; charset=utf-8";

/// Header carrying the sending node's numeric id between gossip peers.
pub const NODE_HEADER: &str = "X-WSG-Node";

/// Tuning knobs for [`SoapHttpServer`].
#[derive(Debug, Clone)]
pub struct HttpServerConfig {
    /// Worker threads servicing connections.
    pub workers: usize,
    /// Close a connection after this much idle time between requests.
    pub keep_alive: Duration,
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of a request body.
    pub max_body_bytes: usize,
    /// Accepted-but-unserviced connections to queue before refusing.
    pub queue_depth: usize,
    /// How long a worker blocks per read before re-queuing a quiet
    /// connection and serving the next one. Workers multiplex over all
    /// live connections in slices, so a request arriving on an idle
    /// keep-alive connection waits on average `connections * read_slice
    /// / (2 * workers)` for attention: shrink this (and/or raise
    /// `workers`) for latency-sensitive fleets with many idle
    /// connections, at the cost of more wakeups.
    pub read_slice: Duration,
    /// Upper bound on any single blocking write to a peer. A peer that
    /// accepts a connection but stops reading (zero receive window)
    /// would otherwise park a worker in `write_all` forever; with the
    /// timeout the write errors out and the connection is shed.
    pub write_timeout: Duration,
}

impl Default for HttpServerConfig {
    fn default() -> Self {
        HttpServerConfig {
            workers: 2,
            keep_alive: Duration::from_secs(5),
            max_head_bytes: crate::parser::MAX_HEAD_BYTES,
            max_body_bytes: crate::parser::MAX_BODY_BYTES,
            queue_depth: 64,
            read_slice: READ_SLICE,
            write_timeout: WRITE_TIMEOUT,
        }
    }
}

/// A decoded SOAP request as handed to the [`Service`].
#[derive(Debug, Clone)]
pub struct SoapRequest {
    /// Request target path with any query string stripped (`"/gossip"`,
    /// `"/membership"`, ...) — services route multi-endpoint nodes on it.
    pub target: String,
    /// `SOAPAction` header, quotes stripped.
    pub action: Option<String>,
    /// Sending node id from the [`NODE_HEADER`] header, when present.
    pub from_node: Option<usize>,
    /// Peer socket address of the connection.
    pub peer: SocketAddr,
    /// The parsed envelope.
    pub envelope: Envelope,
    /// The raw XML body as received.
    pub raw: String,
}

/// What the service wants sent back.
#[derive(Debug, Clone)]
pub enum SoapReply {
    /// Respond `200 OK` with this envelope.
    Envelope(Envelope),
    /// One-way accepted: respond `202 Accepted` with an empty body.
    Accepted,
}

/// The application hook: turns a decoded request into a reply or a fault.
pub type Service = Arc<dyn Fn(SoapRequest) -> Result<SoapReply, Fault> + Send + Sync>;

/// Paths servable with `GET` (read-only observability routes). The 405
/// `Allow` header is derived from this table plus the SOAP `POST` route,
/// so it can never drift out of sync with what the server actually
/// accepts.
const GET_ROUTES: &[&str] = &["/metrics"];

/// The `Allow` header value matching the live route table.
fn allowed_methods() -> String {
    let mut methods = vec!["POST"];
    if !GET_ROUTES.is_empty() {
        methods.push("GET");
    }
    methods.sort_unstable();
    methods.join(", ")
}

/// Live metric handles the server updates while running — all registered
/// in the (possibly shared) [`Registry`] that `GET /metrics` renders.
#[derive(Debug)]
struct ServerMetrics {
    registry: Arc<Registry>,
    requests: Arc<Counter>,
    responses: Arc<Family<Counter>>,
    faults: Arc<Counter>,
    parse_errors: Arc<Counter>,
    request_micros: Arc<HistogramMetric>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    write_errors: Arc<Counter>,
    connections_shed: Arc<Counter>,
}

impl ServerMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        let requests = registry
            .register_counter("wsg_http_server_requests_total", "HTTP requests answered.");
        let responses = registry.register_counter_family(
            "wsg_http_server_responses_total",
            "Responses by status class (2xx/4xx/5xx).",
            &["class"],
        );
        let faults = registry.register_counter(
            "wsg_http_server_faults_total",
            "Requests answered with a SOAP fault envelope (400 or 500).",
        );
        let parse_errors = registry.register_counter(
            "wsg_http_server_parse_errors_total",
            "Connections dropped because of unparseable HTTP.",
        );
        let request_micros = registry.register_histogram(
            "wsg_http_server_request_micros",
            "Wall-clock service time per request, microseconds.",
        );
        let bytes_in = registry
            .register_counter("wsg_http_server_bytes_in_total", "Bytes read from sockets.");
        let bytes_out = registry
            .register_counter("wsg_http_server_bytes_out_total", "Bytes written to sockets.");
        let write_errors = registry.register_counter(
            "wsg_http_server_write_errors_total",
            "Responses lost to a failed or timed-out socket write.",
        );
        let connections_shed = registry.register_counter(
            "wsg_http_server_connections_shed_total",
            "Live connections dropped because the re-queue backlog was full.",
        );
        ServerMetrics {
            registry,
            requests,
            responses,
            faults,
            parse_errors,
            request_micros,
            bytes_in,
            bytes_out,
            write_errors,
            connections_shed,
        }
    }

    fn count_response(&self, status: u16) {
        let class = match status / 100 {
            2 => "2xx",
            3 => "3xx",
            4 => "4xx",
            _ => "5xx",
        };
        self.responses.with(&[class]).inc();
    }
}

/// A running SOAP-over-HTTP server.
///
/// Dropping the server triggers a best-effort [`SoapHttpServer::shutdown`].
pub struct SoapHttpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
}

impl SoapHttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving with a fresh
    /// metric registry.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Service,
        config: HttpServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_observed(addr, service, config, Arc::new(Registry::new()))
    }

    /// Like [`SoapHttpServer::bind`], but register the server's metrics
    /// in a caller-provided registry — `GET /metrics` then exposes
    /// whatever else the caller exports there (gossip and coordinator
    /// families in the node runtime).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_observed(
        addr: impl ToSocketAddrs,
        service: Service,
        config: HttpServerConfig,
        registry: Arc<Registry>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Self::serve_observed(listener, service, config, registry)
    }

    /// Serve on an already-bound listener (used by the runtime, which
    /// binds all node sockets before starting any of them) with a fresh
    /// metric registry.
    ///
    /// # Errors
    ///
    /// Fails if the listener's local address cannot be read.
    pub fn serve(
        listener: TcpListener,
        service: Service,
        config: HttpServerConfig,
    ) -> std::io::Result<Self> {
        Self::serve_observed(listener, service, config, Arc::new(Registry::new()))
    }

    /// Like [`SoapHttpServer::serve`], with a caller-provided registry.
    ///
    /// # Errors
    ///
    /// Fails if the listener's local address cannot be read.
    pub fn serve_observed(
        listener: TcpListener,
        service: Service,
        config: HttpServerConfig,
        registry: Arc<Registry>,
    ) -> std::io::Result<Self> {
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServerMetrics::new(registry));
        let (conn_tx, conn_rx): (SyncSender<Conn>, Receiver<Conn>) =
            sync_channel(config.queue_depth.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let workers = config.workers.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&conn_rx);
            let tx = conn_tx.clone();
            let service = Arc::clone(&service);
            let config = config.clone();
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            // On spawn failure the early return drops the channel ends,
            // so already-started workers observe the disconnect and exit.
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("wsg-http-worker-{i}"))
                    .spawn(move || worker_loop(rx, tx, service, config, stop, counters))?,
            );
        }

        let accept_stop = Arc::clone(&stop);
        let accept_config = config.clone();
        let accept_handle = std::thread::Builder::new()
            .name("wsg-http-accept".into())
            .spawn(move || accept_loop(listener, conn_tx, accept_config, accept_stop))?;

        Ok(SoapHttpServer {
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
            worker_handles,
            metrics: counters,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry backing `GET /metrics` on this server.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.metrics.registry)
    }

    /// Requests answered so far (any status).
    pub fn requests_served(&self) -> u64 {
        self.metrics.requests.get()
    }

    /// Requests that produced a fault envelope (400 or 500).
    pub fn faults_served(&self) -> u64 {
        self.metrics.faults.get()
    }

    /// Connections dropped because of unparseable HTTP.
    pub fn parse_errors(&self) -> u64 {
        self.metrics.parse_errors.get()
    }

    /// Stop accepting, finish queued connections and join all threads.
    ///
    /// Idempotent: later calls return immediately.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept thread blocks in accept(); poke it awake with a
        // throwaway connection so it can observe the stop flag.
        // wsg_lint: allow(E2) — the poke is the side effect; a refused connect means the accept thread is already gone
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        if let Some(handle) = self.accept_handle.take() {
            // wsg_lint: allow(E2) — a panicked accept thread already tore the server down; join carries nothing further
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            // wsg_lint: allow(E2) — worker panics surface as dropped connections; shutdown must still join the rest
            let _ = handle.join();
        }
    }
}

impl Drop for SoapHttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A live connection with its accumulated parse state and idle time,
/// passed between workers through the connection queue.
struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    parser: RequestParser,
    idle: Duration,
}

fn accept_loop(
    listener: TcpListener,
    conn_tx: SyncSender<Conn>,
    config: HttpServerConfig,
    stop: Arc<AtomicBool>,
) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            // The wakeup connection (or a straggler during shutdown).
            return;
        }
        if !arm_stream_timeouts(&stream, &config) {
            continue;
        }
        let conn = Conn {
            stream,
            peer,
            parser: RequestParser::with_limits(config.max_head_bytes, config.max_body_bytes),
            idle: Duration::ZERO,
        };
        match conn_tx.try_send(conn) {
            Ok(()) => {}
            Err(TrySendError::Full(conn)) => {
                // Backlog full: shed load instead of blocking the
                // accept thread. The client's retry path covers this.
                drop(conn);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Default for [`HttpServerConfig::read_slice`]: how long a worker blocks
/// per read before re-queuing the connection and moving to the next one.
/// Small, because a keep-alive peer may hold its pooled connection open
/// for a long time: workers multiplex over all live connections in slices
/// rather than parking on one each.
const READ_SLICE: Duration = Duration::from_millis(10);

/// Default for [`HttpServerConfig::write_timeout`]: generous, because a
/// healthy peer drains a response in microseconds — only a stalled or
/// malicious one ever gets near it.
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Arm an accepted socket with the server's deadlines: the read-slice
/// read timeout (workers multiplex over connections in slices) and the
/// configured write timeout, so a peer that stops reading errors the
/// write out instead of parking a worker in `write_all` forever. False
/// when the socket refuses (already dead) — the caller sheds it.
fn arm_stream_timeouts(stream: &TcpStream, config: &HttpServerConfig) -> bool {
    if stream.set_read_timeout(Some(config.read_slice.max(Duration::from_millis(1)))).is_err() {
        return false;
    }
    if stream.set_write_timeout(Some(config.write_timeout.max(Duration::from_millis(1)))).is_err() {
        return false;
    }
    // wsg_lint: allow(E2) — Nagle is a latency tuning; a socket that rejects it still serves
    let _ = stream.set_nodelay(true);
    true
}

fn worker_loop(
    conn_rx: Arc<Mutex<Receiver<Conn>>>,
    conn_tx: SyncSender<Conn>,
    service: Service,
    config: HttpServerConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<ServerMetrics>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Hold the lock only while waiting for a connection so an idle
        // worker never starves a busy one.
        let conn = {
            let rx = conn_rx.lock();
            match rx.recv_timeout(config.read_slice * 4) {
                Ok(conn) => Some(conn),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        let Some(conn) = conn else { continue };
        if let Some(conn) = serve_slice(conn, &service, &config, &stop, &counters) {
            // Still alive: back in the rotation. A full queue here means
            // the server is drowning in connections; shed this one.
            if conn_tx.try_send(conn).is_err() {
                counters.connections_shed.inc();
            }
        }
    }
}

/// Service one connection until its socket goes quiet for a read slice,
/// then hand it back for re-queuing. Returns `None` when the connection
/// is finished (closed, errored, idled out, or shutdown).
fn serve_slice(
    mut conn: Conn,
    service: &Service,
    config: &HttpServerConfig,
    stop: &AtomicBool,
    counters: &ServerMetrics,
) -> Option<Conn> {
    let mut chunk = [0u8; 4096];
    loop {
        // Drain any complete pipelined requests before reading more.
        loop {
            match conn.parser.parse() {
                Ok(Parsed::Complete(request)) => {
                    conn.idle = Duration::ZERO;
                    let keep = request.keep_alive();
                    let started = Instant::now();
                    let response = handle_request(request, conn.peer, service, counters);
                    counters
                        .request_micros
                        .observe(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                    counters.requests.inc();
                    counters.count_response(response.status);
                    let wire = response.to_bytes();
                    counters.bytes_out.add(wire.len() as u64);
                    // wsg_lint: allow(T1) — write timeout armed at accept time (arm_stream_timeouts)
                    if conn.stream.write_all(&wire).is_err() {
                        counters.write_errors.inc();
                        return None;
                    }
                    if !keep {
                        return None;
                    }
                }
                Ok(Parsed::Partial) => break,
                Err(err) => {
                    counters.parse_errors.inc();
                    let body = format!("bad request: {err}").into_bytes();
                    let response = Response::with_body(400, "Bad Request", "text/plain", body)
                        .with_header("Connection", "close");
                    counters.count_response(response.status);
                    let wire = response.to_bytes();
                    counters.bytes_out.add(wire.len() as u64);
                    // wsg_lint: allow(T1) — write timeout armed at accept time (arm_stream_timeouts)
                    if conn.stream.write_all(&wire).is_err() {
                        counters.write_errors.inc();
                    }
                    return None;
                }
            }
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => {
                conn.idle = Duration::ZERO;
                counters.bytes_in.add(n as u64);
                conn.parser.feed(&chunk[..n]);
            }
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return None;
                }
                conn.idle += config.read_slice;
                if conn.idle >= config.keep_alive {
                    return None;
                }
                // Quiet socket: yield the worker to other connections.
                return Some(conn);
            }
            Err(_) => return None,
        }
    }
}

fn handle_request(
    mut request: crate::message::Request,
    peer: SocketAddr,
    service: &Service,
    counters: &ServerMetrics,
) -> Response {
    if request.method == "GET" {
        let path = request.target.split('?').next().unwrap_or(request.target.as_str());
        return match path {
            "/metrics" => Response::with_body(
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                counters.registry.render().into_bytes(),
            ),
            _ => Response::new(404, "Not Found"),
        };
    }
    if request.method != "POST" {
        return Response::new(405, "Method Not Allowed").with_header("Allow", allowed_methods());
    }
    let Ok(raw) = String::from_utf8(std::mem::take(&mut request.body)) else {
        counters.faults.inc();
        return fault_response(400, Fault::new(FaultCode::Sender, "body is not valid UTF-8"));
    };
    let post_target =
        request.target.split('?').next().unwrap_or(request.target.as_str()).to_string();
    let from_node = request.header(NODE_HEADER).and_then(|v| v.trim().parse().ok());

    // A `urn:ws-gossip:batch` wrapper carries N envelopes in one POST:
    // each is dispatched through the service exactly as if it had arrived
    // alone (inner `target` attributes override the POST target for
    // piggybacked routes), and the whole batch is answered once — 202 on
    // success, the first fault otherwise. Inner reply envelopes are
    // dropped: a batch is a one-way transport frame. `parse_wire` streams
    // the document once, slicing each inner envelope's `raw` bytes back
    // out of the request body instead of re-serialising trees.
    let root = match wsg_soap::batch::parse_wire(&raw) {
        Ok(wsg_soap::batch::Unbundled::Batch(messages)) => {
            for message in messages {
                let action = message.envelope.addressing().action().map(str::to_string);
                let soap_request = SoapRequest {
                    target: message.target.unwrap_or_else(|| post_target.clone()),
                    action,
                    from_node,
                    peer,
                    envelope: message.envelope,
                    raw: message.raw,
                };
                if let Err(fault) = service(soap_request) {
                    counters.faults.inc();
                    return fault_response(500, fault);
                }
            }
            return Response::new(202, "Accepted");
        }
        Ok(wsg_soap::batch::Unbundled::Single(root)) => root,
        Err(err) => {
            counters.faults.inc();
            return fault_response(
                400,
                Fault::new(FaultCode::Sender, format!("body is not a SOAP envelope: {err}")),
            );
        }
    };

    let envelope = match Envelope::from_element(&root) {
        Ok(envelope) => envelope,
        Err(err) => {
            counters.faults.inc();
            return fault_response(
                400,
                Fault::new(FaultCode::Sender, format!("body is not a SOAP envelope: {err}")),
            );
        }
    };
    let soap_request = SoapRequest {
        target: post_target,
        action: request.soap_action().map(str::to_string),
        from_node,
        peer,
        envelope,
        raw,
    };
    match service(soap_request) {
        Ok(SoapReply::Accepted) => Response::new(202, "Accepted"),
        Ok(SoapReply::Envelope(envelope)) => Response::with_body(
            200,
            "OK",
            SOAP_CONTENT_TYPE,
            envelope.to_xml().into_bytes(),
        ),
        Err(fault) => {
            counters.faults.inc();
            fault_response(500, fault)
        }
    }
}

fn fault_response(status: u16, fault: Fault) -> Response {
    let reason = if status == 400 { "Bad Request" } else { "Internal Server Error" };
    let envelope = Envelope::fault(MessageHeaders::new(), fault);
    Response::with_body(status, reason, SOAP_CONTENT_TYPE, envelope.to_xml().into_bytes())
}

/// Wrap a [`HandlerChain`] as a [`Service`].
///
/// Inbound envelopes run through the chain exactly as in the simulated
/// runtimes: `Deliver` hands the processed envelope to `app`, `Consumed`
/// maps to `202 Accepted`, and a chain fault becomes the HTTP 500 fault
/// path. Envelopes the chain wants re-routed (`ChainResult::sends`) go to
/// `out`, which the caller connects to its client transport.
pub fn chain_service(
    chain: HandlerChain,
    local_address: impl Into<String>,
    out: impl Fn(Envelope) + Send + Sync + 'static,
    app: impl Fn(Envelope) -> Result<SoapReply, Fault> + Send + Sync + 'static,
) -> Service {
    let chain = Mutex::new(chain);
    let local_address = local_address.into();
    Arc::new(move |request: SoapRequest| {
        let result =
            chain.lock().process(Direction::Inbound, request.envelope, local_address.as_str());
        for send in result.sends {
            out(send);
        }
        match result.disposition {
            wsg_soap::Disposition::Deliver(envelope) => app(envelope),
            wsg_soap::Disposition::Consumed => Ok(SoapReply::Accepted),
            wsg_soap::Disposition::Faulted(fault) => Err(fault),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn accepted_sockets_are_armed_with_read_and_write_timeouts() {
        // Regression: the accept path used to set only the read timeout,
        // so a peer that accepted a response but stopped reading could
        // park a worker in write_all forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (accepted, _peer) = listener.accept().unwrap();
        let config = HttpServerConfig::default();
        assert!(arm_stream_timeouts(&accepted, &config));
        // The OS may round a timeout up to its timer granularity, so
        // assert "armed, and no shorter than configured" rather than
        // exact equality.
        let read = accepted.read_timeout().unwrap().expect("read timeout armed");
        assert!(read >= config.read_slice.max(Duration::from_millis(1)), "{read:?}");
        let write = accepted.write_timeout().unwrap().expect("write timeout armed");
        assert!(write >= config.write_timeout, "{write:?}");
        assert!(config.write_timeout > Duration::ZERO, "default must actually bound writes");
    }

    fn echo_service() -> Service {
        Arc::new(|req: SoapRequest| Ok(SoapReply::Envelope(req.envelope)))
    }

    fn raw_exchange(addr: SocketAddr, wire: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(wire).unwrap();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn sample_envelope() -> Envelope {
        Envelope::request(
            MessageHeaders::request("http://node1/gossip", "urn:svc:Notify"),
            wsg_xml::Element::text_node("tick", "ACME 101.25"),
        )
    }

    #[test]
    fn echoes_posted_envelope() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", echo_service(), HttpServerConfig::default())
                .unwrap();
        let body = sample_envelope().to_xml();
        let wire = format!(
            "POST /gossip HTTP/1.1\r\nContent-Type: {SOAP_CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let reply = raw_exchange(server.local_addr(), wire.as_bytes());
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "got: {reply}");
        assert!(reply.contains("ACME 101.25"));
        assert_eq!(server.requests_served(), 1);
        server.shutdown();
    }

    #[test]
    fn service_sees_the_request_target_query_stripped() {
        let service: Service = Arc::new(|req: SoapRequest| {
            assert_eq!(req.target, "/membership", "query must be stripped: {}", req.target);
            Ok(SoapReply::Accepted)
        });
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", service, HttpServerConfig::default()).unwrap();
        let body = sample_envelope().to_xml();
        let wire = format!(
            "POST /membership?src=test HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let reply = raw_exchange(server.local_addr(), wire.as_bytes());
        assert!(reply.starts_with("HTTP/1.1 202 "), "got: {reply}");
        server.shutdown();
    }

    #[test]
    fn unknown_method_is_405_with_derived_allow() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", echo_service(), HttpServerConfig::default())
                .unwrap();
        let reply = raw_exchange(
            server.local_addr(),
            b"PUT /gossip HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 405 "), "got: {reply}");
        // The Allow header is derived from the route table (GET routes
        // plus the SOAP POST endpoint), not hard-coded.
        assert!(reply.contains("Allow: GET, POST\r\n"), "got: {reply}");
        server.shutdown();
    }

    #[test]
    fn get_off_route_is_404() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", echo_service(), HttpServerConfig::default())
                .unwrap();
        let reply = raw_exchange(
            server.local_addr(),
            b"GET /gossip HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 404 "), "got: {reply}");
        server.shutdown();
    }

    #[test]
    fn metrics_route_serves_the_registry_exposition() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", echo_service(), HttpServerConfig::default())
                .unwrap();
        // One POST first so the counters are non-trivial.
        let body = sample_envelope().to_xml();
        let wire = format!(
            "POST /gossip HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let _ = raw_exchange(server.local_addr(), wire.as_bytes());
        let reply = raw_exchange(
            server.local_addr(),
            b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "got: {reply}");
        assert!(reply.contains("# TYPE wsg_http_server_requests_total counter"));
        assert!(reply.contains("wsg_http_server_requests_total 1"), "got: {reply}");
        assert!(reply.contains("wsg_http_server_responses_total{class=\"2xx\"} 1"));
        // Query strings are stripped before routing.
        let reply = raw_exchange(
            server.local_addr(),
            b"GET /metrics?format=text HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "got: {reply}");
        server.shutdown();
    }

    #[test]
    fn observed_server_shares_a_caller_registry() {
        let registry = Arc::new(Registry::new());
        registry.register_counter("wsg_app_custom_total", "App-level counter.").add(9);
        let mut server = SoapHttpServer::bind_observed(
            "127.0.0.1:0",
            echo_service(),
            HttpServerConfig::default(),
            Arc::clone(&registry),
        )
        .unwrap();
        let reply = raw_exchange(
            server.local_addr(),
            b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("wsg_app_custom_total 9"), "got: {reply}");
        assert!(Arc::ptr_eq(&registry, &server.registry()));
        server.shutdown();
    }

    #[test]
    fn non_envelope_body_is_400_with_sender_fault() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", echo_service(), HttpServerConfig::default())
                .unwrap();
        let reply = raw_exchange(
            server.local_addr(),
            b"POST / HTTP/1.1\r\nContent-Length: 9\r\nConnection: close\r\n\r\nnot xml!!",
        );
        assert!(reply.starts_with("HTTP/1.1 400 "), "got: {reply}");
        assert!(reply.contains("Sender"), "fault code missing: {reply}");
        assert_eq!(server.faults_served(), 1);
        server.shutdown();
    }

    #[test]
    fn service_fault_is_500_with_fault_envelope() {
        let service: Service =
            Arc::new(|_req| Err(Fault::new(FaultCode::Receiver, "handler exploded")));
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", service, HttpServerConfig::default()).unwrap();
        let body = sample_envelope().to_xml();
        let wire = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let reply = raw_exchange(server.local_addr(), wire.as_bytes());
        assert!(reply.starts_with("HTTP/1.1 500 "), "got: {reply}");
        assert!(reply.contains("handler exploded"));
        server.shutdown();
    }

    #[test]
    fn garbage_gets_400_and_close() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", echo_service(), HttpServerConfig::default())
                .unwrap();
        let reply = raw_exchange(server.local_addr(), b"THIS IS NOT HTTP\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400 "), "got: {reply}");
        assert_eq!(server.parse_errors(), 1);
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", echo_service(), HttpServerConfig::default())
                .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let body = sample_envelope().to_xml();
        for round in 0..3 {
            let wire = format!(
                "POST /gossip HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(wire.as_bytes()).unwrap();
            let mut parser = crate::parser::ResponseParser::new();
            let mut chunk = [0u8; 1024];
            let response = loop {
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed early on round {round}");
                parser.feed(&chunk[..n]);
                if let Parsed::Complete(resp) = parser.parse().unwrap() {
                    break resp;
                }
            };
            assert_eq!(response.status, 200, "round {round}");
        }
        assert_eq!(server.requests_served(), 3);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", echo_service(), HttpServerConfig::default())
                .unwrap();
        let started = std::time::Instant::now();
        server.shutdown();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            started.elapsed()
        );
        assert!(TcpStream::connect(server.local_addr()).is_err() || {
            // The OS may still accept briefly; a write must then fail.
            true
        });
    }

    #[test]
    fn chain_service_maps_dispositions() {
        use std::sync::atomic::AtomicUsize;
        let delivered = Arc::new(AtomicUsize::new(0));
        let forwarded = Arc::new(AtomicUsize::new(0));
        let delivered2 = Arc::clone(&delivered);
        let forwarded2 = Arc::clone(&forwarded);
        let service = chain_service(
            HandlerChain::new(),
            "http://node0/gossip",
            move |_envelope| {
                forwarded2.fetch_add(1, Ordering::Relaxed);
            },
            move |_envelope| {
                delivered2.fetch_add(1, Ordering::Relaxed);
                Ok(SoapReply::Accepted)
            },
        );
        let request = SoapRequest {
            target: "/gossip".into(),
            action: Some("urn:svc:Notify".into()),
            from_node: Some(1),
            peer: "127.0.0.1:1".parse().unwrap(),
            envelope: sample_envelope(),
            raw: sample_envelope().to_xml(),
        };
        assert!(matches!(service(request), Ok(SoapReply::Accepted)));
        assert_eq!(delivered.load(Ordering::Relaxed), 1);
        assert_eq!(forwarded.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn idle_connections_time_out() {
        let config = HttpServerConfig {
            keep_alive: Duration::from_millis(100),
            ..HttpServerConfig::default()
        };
        let mut server = SoapHttpServer::bind("127.0.0.1:0", echo_service(), config).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 16];
        let started = Instant::now();
        // The server should close the idle connection, yielding EOF.
        let n = stream.read(&mut buf).unwrap();
        assert_eq!(n, 0, "expected EOF from idle timeout");
        assert!(started.elapsed() >= Duration::from_millis(80));
        server.shutdown();
    }
}
