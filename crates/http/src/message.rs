//! HTTP/1.1 message types and their wire serialisation.
//!
//! Requests and responses are plain owned structs; [`Headers`] keeps
//! insertion order and looks names up case-insensitively, as RFC 9110
//! requires (`Content-Length`, `content-length` and `CONTENT-LENGTH` are
//! the same header on the wire).

use std::fmt::Write as _;

/// An ordered header list with case-insensitive name lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// An empty header list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a header (duplicates are kept; [`Headers::get`] returns the
    /// first).
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// First value of `name`, compared case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All entries, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Whether a message with these headers keeps the connection open.
///
/// HTTP/1.1 defaults to keep-alive unless `Connection: close`; HTTP/1.0
/// defaults to close unless `Connection: keep-alive`.
fn keep_alive(version: &str, headers: &Headers) -> bool {
    let connection = headers.get("connection").unwrap_or("");
    if connection.eq_ignore_ascii_case("close") {
        return false;
    }
    if version == "HTTP/1.0" {
        return connection.eq_ignore_ascii_case("keep-alive");
    }
    true
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method ("POST", "GET", ...).
    pub method: String,
    /// Request target ("/gossip").
    pub target: String,
    /// Protocol version ("HTTP/1.1").
    pub version: String,
    /// Header fields in order of appearance.
    pub headers: Headers,
    /// The message body (empty when no `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// A POST request carrying `body`, with `Content-Length` set.
    pub fn post(target: impl Into<String>, body: Vec<u8>) -> Self {
        let mut headers = Headers::new();
        headers.push("Content-Length", body.len().to_string());
        Request {
            method: "POST".into(),
            target: target.into(),
            version: "HTTP/1.1".into(),
            headers,
            body,
        }
    }

    /// Builder: append a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push(name, value);
        self
    }

    /// First value of a header, case-insensitive.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name)
    }

    /// The `SOAPAction` header value with optional surrounding quotes
    /// stripped, as the SOAP 1.1 HTTP binding writes it.
    pub fn soap_action(&self) -> Option<&str> {
        self.headers
            .get("soapaction")
            .map(|v| v.trim().trim_matches('"'))
    }

    /// Whether the connection stays open after this exchange.
    pub fn keep_alive(&self) -> bool {
        keep_alive(&self.version, &self.headers)
    }

    /// Serialise to wire bytes (head + body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = String::new();
        // wsg_lint: allow(E2) — fmt::Write to a String is infallible
        let _ = write!(head, "{} {} {}\r\n", self.method, self.target, self.version);
        for (name, value) in self.headers.iter() {
            // wsg_lint: allow(E2) — fmt::Write to a String is infallible
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Protocol version ("HTTP/1.1").
    pub version: String,
    /// Status code (200, 202, 400, 500, ...).
    pub status: u16,
    /// Reason phrase ("OK").
    pub reason: String,
    /// Header fields in order of appearance.
    pub headers: Headers,
    /// The message body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status, an empty body and
    /// `Content-Length: 0`.
    pub fn new(status: u16, reason: impl Into<String>) -> Self {
        let mut headers = Headers::new();
        headers.push("Content-Length", "0");
        Response {
            version: "HTTP/1.1".into(),
            status,
            reason: reason.into(),
            headers,
            body: Vec::new(),
        }
    }

    /// A response carrying `body` with the given content type
    /// (`Content-Length` is set from the body).
    pub fn with_body(status: u16, reason: impl Into<String>, content_type: &str, body: Vec<u8>) -> Self {
        let mut headers = Headers::new();
        headers.push("Content-Type", content_type);
        headers.push("Content-Length", body.len().to_string());
        Response {
            version: "HTTP/1.1".into(),
            status,
            reason: reason.into(),
            headers,
            body,
        }
    }

    /// Builder: append a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push(name, value);
        self
    }

    /// First value of a header, case-insensitive.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name)
    }

    /// Whether the connection stays open after this exchange.
    pub fn keep_alive(&self) -> bool {
        keep_alive(&self.version, &self.headers)
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serialise to wire bytes (head + body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = String::new();
        // wsg_lint: allow(E2) — fmt::Write to a String is infallible
        let _ = write!(head, "{} {} {}\r\n", self.version, self.status, self.reason);
        for (name, value) in self.headers.iter() {
            // wsg_lint: allow(E2) — fmt::Write to a String is infallible
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_lookup_is_case_insensitive() {
        let mut headers = Headers::new();
        headers.push("Content-Length", "12");
        headers.push("SOAPAction", "\"urn:op\"");
        assert_eq!(headers.get("content-length"), Some("12"));
        assert_eq!(headers.get("CONTENT-LENGTH"), Some("12"));
        assert_eq!(headers.get("soapaction"), Some("\"urn:op\""));
        assert_eq!(headers.get("missing"), None);
    }

    #[test]
    fn post_sets_content_length() {
        let req = Request::post("/gossip", b"hello".to_vec());
        assert_eq!(req.header("Content-Length"), Some("5"));
        let wire = String::from_utf8(req.to_bytes()).unwrap();
        assert!(wire.starts_with("POST /gossip HTTP/1.1\r\n"));
        assert!(wire.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn soap_action_strips_quotes() {
        let req = Request::post("/", Vec::new()).with_header("SOAPAction", "\"urn:notify\"");
        assert_eq!(req.soap_action(), Some("urn:notify"));
        let bare = Request::post("/", Vec::new()).with_header("soapaction", "urn:notify");
        assert_eq!(bare.soap_action(), Some("urn:notify"));
    }

    #[test]
    fn keep_alive_defaults_by_version() {
        let http11 = Request::post("/", Vec::new());
        assert!(http11.keep_alive());
        let close = Request::post("/", Vec::new()).with_header("Connection", "close");
        assert!(!close.keep_alive());
        let mut http10 = Request::post("/", Vec::new());
        http10.version = "HTTP/1.0".into();
        assert!(!http10.keep_alive());
        let http10_ka = http10.with_header("Connection", "Keep-Alive");
        assert!(http10_ka.keep_alive());
    }

    #[test]
    fn response_serialises_status_line() {
        let resp = Response::with_body(500, "Internal Server Error", "application/soap+xml", b"<f/>".to_vec());
        let wire = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(wire.starts_with("HTTP/1.1 500 Internal Server Error\r\n"));
        assert!(wire.contains("Content-Length: 4\r\n"));
        assert!(wire.ends_with("\r\n\r\n<f/>"));
    }
}
