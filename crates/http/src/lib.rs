//! # wsg-http — SOAP over real sockets
//!
//! Everything below `crates/http` in this workspace moves messages through
//! channels or the discrete-event simulator. This crate is the missing
//! piece of the paper's artifact: an actual **SOAP-over-HTTP/1.1
//! transport** on `std::net::{TcpListener, TcpStream}`, written in-tree so
//! the workspace's zero-registry-dependency policy holds (no `hyper`, no
//! `reqwest` — see DESIGN.md §5).
//!
//! * [`message`] / [`parser`] — HTTP/1.1 requests and responses with an
//!   **incremental** parser: bytes arrive in arbitrary read-sized chunks
//!   and the parser hands back a complete message once the
//!   `Content-Length` body is buffered. Malformed input is an error, never
//!   a panic (the server answers 400).
//! * [`server`] — [`server::SoapHttpServer`]: accept loop + bounded worker
//!   thread pool, keep-alive with a per-connection idle timeout, graceful
//!   shutdown, and dispatch of POSTed envelopes through a
//!   `wsg_soap::HandlerChain` with faults mapped to
//!   500-with-SOAP-fault responses.
//! * [`client`] — [`client::SoapHttpClient`]: keyed keep-alive connection
//!   pool, connect/read/write timeouts, bounded retry with seeded
//!   jittered exponential backoff (`wsg_net::rng`, so tests replay
//!   deterministically).
//! * [`runtime`] — [`runtime::NetRuntime`]: the networked twin of
//!   `wsg_net::threads::ThreadNet`. Every `Protocol<Message = String>`
//!   node (notably `ws_gossip::WsGossipNode`) gets its own loopback
//!   socket, HTTP server and client; gossip rounds are real serialized
//!   envelopes POSTed between processes' sockets.
//!
//! ## Example: a one-way SOAP endpoint on a real socket
//!
//! ```
//! use std::sync::Arc;
//! use wsg_http::client::{HttpClientConfig, SoapHttpClient};
//! use wsg_http::server::{HttpServerConfig, SoapHttpServer, SoapReply};
//! use wsg_soap::{Envelope, MessageHeaders};
//! use wsg_xml::Element;
//!
//! let mut server = SoapHttpServer::bind(
//!     "127.0.0.1:0",
//!     Arc::new(|_req| Ok(SoapReply::Accepted)),
//!     HttpServerConfig::default(),
//! )
//! .unwrap();
//! let client = SoapHttpClient::new(42, HttpClientConfig::default());
//! let envelope = Envelope::request(
//!     MessageHeaders::request("http://svc", "urn:svc:Notify"),
//!     Element::text_node("tick", "ACME 101.25"),
//! );
//! let outcome = client
//!     .post(server.local_addr(), "/gossip", Some("urn:svc:Notify"), &[], envelope.to_xml().as_bytes())
//!     .unwrap();
//! assert_eq!(outcome.response.status, 202);
//! server.shutdown();
//! ```

// A `Service` returns `Result<SoapReply, Fault>` by value: faults and
// reply envelopes are built once per request and immediately serialized,
// so boxing them would buy nothing but allocation noise in every handler.
#![allow(clippy::result_large_err, clippy::large_enum_variant)]

pub mod batch;
pub mod client;
pub mod message;
pub mod parser;
pub mod runtime;
pub mod server;
pub mod time;

pub use batch::{BatchConfig, OutboundHandle};
pub use client::{HttpClientConfig, PostError, PostOutcome, SoapHttpClient};
pub use message::{Headers, Request, Response};
pub use parser::{ParseError, Parsed, RequestParser, ResponseParser};
pub use runtime::{NetNode, NetRuntime, NetRuntimeConfig, NodeDirectory, TransportStats};
pub use server::{HttpServerConfig, SoapHttpServer, SoapReply, SoapRequest};
pub use time::WallClock;
