//! Per-destination outbound queues and the drain policy behind wire-level
//! envelope coalescing (see DESIGN.md §12).
//!
//! A node's `ctx.send` calls land in a `SenderQueues` — one FIFO per
//! destination — and the sender thread drains *everything* queued for a
//! peer into a single `urn:ws-gossip:batch` POST (capped by
//! [`BatchConfig`]). Because the queues are shared, other producers can
//! ride along: `wsg_cluster` heartbeats use [`OutboundHandle::piggyback`]
//! to append to a queue that already has traffic instead of opening their
//! own request.
//!
//! Flush-on-idle is implicit in the wakeup protocol: every push sends a
//! wake token, and the sender drains on each one, so under light load a
//! message is posted alone immediately (batch of one, byte-identical to
//! the unbatched wire format). Batches only form while the sender is busy
//! posting — exactly when coalescing pays.

use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;
use std::sync::Arc;

use wsg_net::protocol::NodeId;
use wsg_net::sync::{AtomicBool, Mutex, Notify, Ordering};

/// Drain-policy knobs for the sender thread's per-peer batches.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Most messages coalesced into one POST. `1` disables wrapping
    /// entirely (every message posts alone); `0` is treated as `1`.
    pub max_batch_msgs: usize,
    /// Soft cap on summed inner-envelope bytes per POST: a batch stops
    /// growing before the message that would cross it. The first message
    /// always goes, whatever its size.
    pub max_batch_bytes: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { max_batch_msgs: 16, max_batch_bytes: 256 * 1024 }
    }
}

/// One queued outbound message: serialised envelope XML plus the route it
/// dispatches to on the receiver (`None` = the gossip inbox).
#[derive(Debug)]
pub(crate) struct QueuedMsg {
    pub(crate) target: Option<String>,
    pub(crate) xml: String,
}

/// The sender thread's wakeup latch: a coalescing wake token plus a
/// sticky stopping flag, replacing a counted command channel. Any number
/// of pushes while the sender is busy posting collapse into one token —
/// the sender drains *queues*, not wake messages, so tokens carry no
/// payload and need no buffering.
///
/// Protocol (model-checked exhaustively under `--cfg wsg_model`, see the
/// `model_tests` module): producers push *then* wake; `stop` sets the
/// flag *then* wakes. The sender reads the flag *before* draining, so
/// every message queued before `stop()` is covered by the final drain —
/// no envelope is stranded and no wakeup lost.
#[derive(Default)]
pub(crate) struct WakeSignal {
    notify: Notify,
    stopping: AtomicBool,
}

impl WakeSignal {
    pub(crate) fn new() -> Self {
        WakeSignal { notify: Notify::new(), stopping: AtomicBool::new(false) }
    }

    /// Producer side: there may be work — wake the sender (idempotent).
    pub(crate) fn wake(&self) {
        self.notify.notify_one();
    }

    /// The node loop ended: have the sender drain what is queued, then
    /// exit. Sticky; the ordering pairs with [`WakeSignal::stopping`].
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::Release);
        self.notify.notify_one();
    }

    /// Sender side: park until a wake token arrives.
    pub(crate) fn wait(&self) {
        self.notify.wait();
    }

    /// Sender side: whether `stop` was requested. Read *before* the
    /// drain that follows a [`WakeSignal::wait`] so the final drain sees
    /// everything queued before the stop.
    pub(crate) fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }
}

/// Callback invoked with the address of a peer whose POST was
/// connection-refused after all retries.
type UnreachableHook = Arc<dyn Fn(SocketAddr) + Send + Sync>;

/// The shared per-destination FIFO queues one sender thread drains.
///
/// Shared between the node loop (its `ctx.send`s), the sender thread, and
/// any piggybacking producer holding an [`OutboundHandle`].
#[derive(Default)]
pub(crate) struct SenderQueues {
    queues: Mutex<BTreeMap<NodeId, VecDeque<QueuedMsg>>>,
    /// Called by the sender thread on exhausted connection-refused POSTs —
    /// `wsg_cluster` wires this to `MembershipPlane::note_unreachable` so
    /// gossip traffic feeds the failure detector too.
    unreachable_hook: Mutex<Option<UnreachableHook>>,
}

impl SenderQueues {
    /// Append for `to`, unconditionally.
    pub(crate) fn push(&self, to: NodeId, target: Option<String>, xml: String) {
        self.queues.lock().entry(to).or_default().push_back(QueuedMsg { target, xml });
    }

    /// Append for `to` only if traffic is already queued there (the clone
    /// happens only on success). Returns whether the message was queued.
    pub(crate) fn piggyback(&self, to: NodeId, target: &str, xml: &str) -> bool {
        let mut queues = self.queues.lock();
        match queues.get_mut(&to) {
            Some(queue) if !queue.is_empty() => {
                queue.push_back(QueuedMsg {
                    target: Some(target.to_string()),
                    xml: xml.to_string(),
                });
                true
            }
            _ => false,
        }
    }

    /// Take the next batch: the first (ascending id) non-empty peer's
    /// queue, drained FIFO up to the caps. [`None`] when everything is
    /// empty. Emptied queues are dropped so the map stays bounded by the
    /// live fan-out, not fleet history.
    pub(crate) fn pop_batch(&self, config: &BatchConfig) -> Option<(NodeId, Vec<QueuedMsg>)> {
        let mut queues = self.queues.lock();
        let to = queues.iter().find(|(_, q)| !q.is_empty()).map(|(id, _)| *id)?;
        let mut batch = Vec::new();
        let mut bytes = 0usize;
        if let Some(queue) = queues.get_mut(&to) {
            while let Some(front) = queue.front() {
                if !batch.is_empty()
                    && (batch.len() >= config.max_batch_msgs.max(1)
                        || bytes + front.xml.len() > config.max_batch_bytes)
                {
                    break;
                }
                bytes += front.xml.len();
                match queue.pop_front() {
                    Some(msg) => batch.push(msg),
                    None => break,
                }
            }
            if queue.is_empty() {
                queues.remove(&to);
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some((to, batch))
        }
    }

    pub(crate) fn set_unreachable_hook(&self, hook: Arc<dyn Fn(SocketAddr) + Send + Sync>) {
        *self.unreachable_hook.lock() = Some(hook);
    }

    pub(crate) fn notify_unreachable(&self, addr: SocketAddr) {
        let hook = self.unreachable_hook.lock().clone();
        if let Some(hook) = hook {
            hook(addr);
        }
    }
}

/// A producer-side handle on one node's outbound path: shared queues plus
/// the sender thread's wakeup latch.
///
/// Cloneable and cheap; obtained from `NetRuntime::outbound_of`. Dropping
/// handles never blocks shutdown — the sender thread exits on an explicit
/// stop flag from the node loop, never on handle count.
#[derive(Clone)]
pub struct OutboundHandle {
    queues: Arc<SenderQueues>,
    wake: Arc<WakeSignal>,
}

impl OutboundHandle {
    pub(crate) fn new(queues: Arc<SenderQueues>, wake: Arc<WakeSignal>) -> Self {
        OutboundHandle { queues, wake }
    }

    /// Queue a gossip envelope for `to` and wake the sender.
    pub(crate) fn send(&self, to: NodeId, xml: String) {
        self.queues.push(to, None, xml);
        self.wake.wake();
    }

    /// Append `xml` behind traffic already queued for `to`, to be
    /// dispatched at route `target` on the receiver. Returns `false` (and
    /// queues nothing) when no batch is forming for that peer — the caller
    /// should fall back to its own POST. Never strands a message: a
    /// successful piggyback wakes the sender like any other push.
    pub fn piggyback(&self, to: NodeId, target: &str, xml: &str) -> bool {
        if self.queues.piggyback(to, target, xml) {
            self.wake.wake();
            true
        } else {
            false
        }
    }

    /// Report connection-refused peers (after retries) to `hook`. One hook
    /// per node; setting replaces the previous one.
    pub fn set_unreachable_hook(&self, hook: Arc<dyn Fn(SocketAddr) + Send + Sync>) {
        self.queues.set_unreachable_hook(hook);
    }

    /// Tell the sender thread to drain what is queued and exit.
    pub(crate) fn stop(&self) {
        self.wake.stop();
    }
}

/// Exhaustive model checks of the wake-token protocol (ISSUE 9): under
/// `RUSTFLAGS="--cfg wsg_model"` the explorer drives every interleaving
/// of producers, the sender loop, and `stop()` within the preemption
/// bound. A lost wakeup surfaces as a model deadlock (the sender parked
/// with no token left to come); a stranded envelope fails the final
/// drain assertion.
#[cfg(all(test, wsg_model))]
mod model_tests {
    use super::*;
    use wsg_model::{thread, Explorer};

    /// The sender thread's protocol, exactly as `runtime::sender_loop`
    /// performs it (wait → read stop → drain → exit-if-stopping), minus
    /// the HTTP posting: drained envelopes are collected instead.
    fn spawn_sender(
        queues: Arc<SenderQueues>,
        signal: Arc<WakeSignal>,
    ) -> thread::JoinHandle<Vec<String>> {
        thread::spawn(move || {
            let config = BatchConfig::default();
            let mut drained = Vec::new();
            loop {
                signal.wait();
                let stopping = signal.stopping();
                while let Some((_, batch)) = queues.pop_batch(&config) {
                    drained.extend(batch.into_iter().map(|m| m.xml));
                }
                if stopping {
                    return drained;
                }
            }
        })
    }

    #[test]
    fn wake_token_protocol_loses_no_envelope() {
        let outcome = Explorer::new()
            .preemption_bound(3)
            .max_schedules(500_000)
            .samples(16)
            .explore(|| {
                let queues = Arc::new(SenderQueues::default());
                let signal = Arc::new(WakeSignal::new());
                let out = OutboundHandle::new(Arc::clone(&queues), Arc::clone(&signal));
                let sender = spawn_sender(Arc::clone(&queues), Arc::clone(&signal));
                out.send(NodeId(1), "<m>0</m>".to_string());
                out.send(NodeId(2), "<m>1</m>".to_string());
                out.stop();
                let drained = sender.join().unwrap();
                assert_eq!(
                    drained.len(),
                    2,
                    "an envelope was stranded or duplicated: {drained:?}"
                );
                assert!(
                    queues.pop_batch(&BatchConfig::default()).is_none(),
                    "queues must be empty once the sender exits"
                );
            });
        assert!(
            outcome.failure.is_none(),
            "lost wakeup or stranded envelope:\n{}",
            outcome.failure.map(|f| f.report()).unwrap_or_default()
        );
        assert!(
            outcome.exhausted,
            "the wake-token fixture must be explored exhaustively at bound 3 \
             ({} schedules run)",
            outcome.schedules
        );
    }

    #[test]
    fn piggyback_never_strands_behind_a_concurrent_drain() {
        // A piggybacking producer races the sender's drain: whenever
        // `piggyback` reports true, its message must come out of the
        // final drain — under every interleaving within the bound.
        let outcome = Explorer::new()
            .preemption_bound(2)
            .max_schedules(500_000)
            .samples(16)
            .explore(|| {
                let queues = Arc::new(SenderQueues::default());
                let signal = Arc::new(WakeSignal::new());
                let out = OutboundHandle::new(Arc::clone(&queues), Arc::clone(&signal));
                let sender = spawn_sender(Arc::clone(&queues), Arc::clone(&signal));
                let rider = {
                    let out = out.clone();
                    thread::spawn(move || out.piggyback(NodeId(1), "/membership", "<hb/>"))
                };
                out.send(NodeId(1), "<m>0</m>".to_string());
                let rode_along = rider.join().unwrap();
                out.stop();
                let drained = sender.join().unwrap();
                assert_eq!(
                    drained.len(),
                    1 + usize::from(rode_along),
                    "a successful piggyback must never be stranded: {drained:?}"
                );
                assert!(queues.pop_batch(&BatchConfig::default()).is_none());
            });
        assert!(
            outcome.failure.is_none(),
            "piggyback raced the drain into a lost message:\n{}",
            outcome.failure.map(|f| f.report()).unwrap_or_default()
        );
        assert!(outcome.exhausted, "({} schedules run)", outcome.schedules);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(n: usize) -> String {
        format!("<m>{n}</m>")
    }

    #[test]
    fn drains_fifo_per_peer_in_ascending_id_order() {
        let queues = SenderQueues::default();
        queues.push(NodeId(7), None, msg(1));
        queues.push(NodeId(2), None, msg(2));
        queues.push(NodeId(7), None, msg(3));
        let config = BatchConfig::default();
        let (to, batch) = queues.pop_batch(&config).unwrap();
        assert_eq!(to, NodeId(2));
        assert_eq!(batch.len(), 1);
        let (to, batch) = queues.pop_batch(&config).unwrap();
        assert_eq!(to, NodeId(7));
        assert_eq!(
            batch.iter().map(|m| m.xml.as_str()).collect::<Vec<_>>(),
            vec![msg(1), msg(3)]
        );
        assert!(queues.pop_batch(&config).is_none());
    }

    #[test]
    fn msg_cap_splits_batches_and_zero_means_one() {
        let queues = SenderQueues::default();
        for n in 0..5 {
            queues.push(NodeId(0), None, msg(n));
        }
        let config = BatchConfig { max_batch_msgs: 2, ..BatchConfig::default() };
        let sizes: Vec<usize> = std::iter::from_fn(|| queues.pop_batch(&config))
            .map(|(_, b)| b.len())
            .collect();
        assert_eq!(sizes, vec![2, 2, 1]);

        let queues = SenderQueues::default();
        queues.push(NodeId(0), None, msg(0));
        queues.push(NodeId(0), None, msg(1));
        let config = BatchConfig { max_batch_msgs: 0, ..BatchConfig::default() };
        let sizes: Vec<usize> = std::iter::from_fn(|| queues.pop_batch(&config))
            .map(|(_, b)| b.len())
            .collect();
        assert_eq!(sizes, vec![1, 1], "cap 0 degrades to one message per post");
    }

    #[test]
    fn byte_cap_is_soft_and_first_message_always_goes() {
        let queues = SenderQueues::default();
        let big = "x".repeat(100);
        queues.push(NodeId(0), None, big.clone());
        queues.push(NodeId(0), None, big.clone());
        queues.push(NodeId(0), None, big);
        let config = BatchConfig { max_batch_msgs: 16, max_batch_bytes: 150 };
        let sizes: Vec<usize> = std::iter::from_fn(|| queues.pop_batch(&config))
            .map(|(_, b)| b.len())
            .collect();
        assert_eq!(sizes, vec![1, 1, 1], "each 100-byte message exceeds the next slot");
    }

    #[test]
    fn piggyback_requires_a_forming_batch() {
        let queues = SenderQueues::default();
        assert!(!queues.piggyback(NodeId(3), "/membership", "<hb/>"), "empty queue");
        queues.push(NodeId(3), None, msg(1));
        assert!(queues.piggyback(NodeId(3), "/membership", "<hb/>"));
        let (_, batch) = queues.pop_batch(&BatchConfig::default()).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[1].target.as_deref(), Some("/membership"));
        // Fully drained: the next piggyback attempt fails again.
        assert!(!queues.piggyback(NodeId(3), "/membership", "<hb/>"));
    }
}
