//! The SOAP-over-HTTP client: pooled keep-alive connections, timeouts,
//! and bounded retry with seeded jittered exponential backoff.
//!
//! [`SoapHttpClient`] keeps one small pool of idle `TcpStream`s per peer
//! address. A [`SoapHttpClient::post`] first drains the pool — a pooled
//! connection that turns out dead (the server idled it out) is discarded
//! *without* consuming a retry attempt, since no fresh connect was tried
//! yet — then falls back to a fresh `connect_timeout`.
//!
//! Transport failures (refused/reset/timeout) are retried up to
//! `retries` times with exponential backoff jittered into `[0.5, 1.0]` of
//! the nominal delay. The jitter comes from a seeded `wsg_net::rng::Pcg32`,
//! so a failing test replays with identical sleep schedules. An HTTP-level
//! error (a 4xx/5xx response) is **not** retried: the bytes made it across,
//! which is all the transport promises.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wsg_net::rng::{Pcg32, RngExt};
use wsg_net::sync::Mutex;
use wsg_obs::{Counter, Family, HistogramMetric, Registry};

use crate::message::Response;
use crate::parser::{Parsed, ResponseParser};
use crate::server::SOAP_CONTENT_TYPE;

/// Tuning knobs for [`SoapHttpClient`].
#[derive(Debug, Clone)]
pub struct HttpClientConfig {
    /// Timeout for establishing a fresh connection.
    pub connect_timeout: Duration,
    /// Timeout for reading a response.
    pub read_timeout: Duration,
    /// Timeout for writing a request.
    pub write_timeout: Duration,
    /// Transport-level retries after the first attempt.
    pub retries: u32,
    /// Nominal backoff before retry `n` is `backoff_base * 2^(n-1)`...
    pub backoff_base: Duration,
    /// ...capped at this much, then jittered into `[0.5, 1.0]` of nominal.
    pub backoff_cap: Duration,
    /// Idle connections kept per peer address.
    pub pool_per_host: usize,
}

impl Default for HttpClientConfig {
    fn default() -> Self {
        HttpClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            retries: 2,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(200),
            pool_per_host: 2,
        }
    }
}

/// A delivered exchange: the response plus how hard it was to get.
#[derive(Debug, Clone)]
pub struct PostOutcome {
    /// The parsed HTTP response (any status — 500 is still an outcome).
    pub response: Response,
    /// Connect attempts made, counting the successful one.
    pub attempts: u32,
}

/// All attempts failed at the transport level.
#[derive(Debug)]
pub struct PostError {
    /// Connect attempts made.
    pub attempts: u32,
    /// The error from the final attempt.
    pub last: std::io::Error,
}

impl std::fmt::Display for PostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "post failed after {} attempts: {}", self.attempts, self.last)
    }
}

impl std::error::Error for PostError {}

/// Live metric handles the client updates, registered under
/// `wsg_http_client_*` in the registry handed to
/// [`SoapHttpClient::new_observed`] (a fresh private registry otherwise).
#[derive(Debug)]
struct ClientMetrics {
    posts: Arc<Counter>,
    post_failures: Arc<Counter>,
    retries: Arc<Counter>,
    pool_hits: Arc<Counter>,
    pool_misses: Arc<Counter>,
    pool_evictions: Arc<Counter>,
    backoff_micros: Arc<Counter>,
    responses: Arc<Family<Counter>>,
    post_micros: Arc<HistogramMetric>,
}

impl ClientMetrics {
    fn new(registry: &Registry) -> Self {
        ClientMetrics {
            posts: registry.register_counter("wsg_http_client_posts_total", "Posts started."),
            post_failures: registry.register_counter(
                "wsg_http_client_post_failures_total",
                "Posts abandoned after exhausting transport retries.",
            ),
            retries: registry.register_counter(
                "wsg_http_client_retries_total",
                "Transport-level retries performed (backoff sleeps taken).",
            ),
            pool_hits: registry.register_counter(
                "wsg_http_client_pool_hits_total",
                "Posts answered over a pooled keep-alive connection.",
            ),
            pool_misses: registry.register_counter(
                "wsg_http_client_pool_misses_total",
                "Posts that needed a fresh connection.",
            ),
            pool_evictions: registry.register_counter(
                "wsg_http_client_pool_evictions_total",
                "Idle pooled connections dropped because their peer failed or was declared dead.",
            ),
            backoff_micros: registry.register_counter(
                "wsg_http_client_backoff_micros_total",
                "Total wall-clock time spent sleeping in retry backoff, microseconds.",
            ),
            responses: registry.register_counter_family(
                "wsg_http_client_responses_total",
                "Responses received by status class (2xx/4xx/5xx).",
                &["class"],
            ),
            post_micros: registry.register_histogram(
                "wsg_http_client_post_micros",
                "Wall-clock time per successful post (including retries), microseconds.",
            ),
        }
    }
}

/// A pooled, retrying SOAP-over-HTTP client.
pub struct SoapHttpClient {
    config: HttpClientConfig,
    pool: Mutex<HashMap<SocketAddr, Vec<TcpStream>>>,
    rng: Mutex<Pcg32>,
    counters: ClientMetrics,
    /// Reused wire buffer: each post formats its head and body into this
    /// one allocation instead of building a `Request` + `to_bytes` pair,
    /// then hands it back for the next post.
    scratch: Mutex<Vec<u8>>,
}

impl SoapHttpClient {
    /// A client whose backoff jitter is derived from `seed`, with a
    /// private metric registry.
    pub fn new(seed: u64, config: HttpClientConfig) -> Self {
        Self::new_observed(seed, config, &Registry::new())
    }

    /// Like [`SoapHttpClient::new`], but register the client's metrics
    /// in a caller-provided registry (the node runtime shares one
    /// registry per node between its server and client).
    pub fn new_observed(seed: u64, config: HttpClientConfig, registry: &Registry) -> Self {
        SoapHttpClient {
            config,
            pool: Mutex::new(HashMap::new()),
            rng: Mutex::new(Pcg32::new(seed, 0x5350_4f54)),
            counters: ClientMetrics::new(registry),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// POST a SOAP envelope (as raw XML bytes) to `addr`.
    ///
    /// `action` becomes the quoted `SOAPAction` header; `extra_headers`
    /// are appended verbatim (the runtime uses this for the node-id
    /// header). Returns the response for **any** HTTP status; [`Err`] means
    /// the bytes never made it across despite `1 + retries` attempts.
    ///
    /// # Errors
    ///
    /// [`PostError`] carries the final attempt's I/O error.
    pub fn post(
        &self,
        addr: SocketAddr,
        target: &str,
        action: Option<&str>,
        extra_headers: &[(String, String)],
        body: &[u8],
    ) -> Result<PostOutcome, PostError> {
        self.counters.posts.inc();
        let started = Instant::now();
        // Format head + body straight into the reused scratch buffer —
        // byte-identical to `Request::post(..).with_header(..).to_bytes()`
        // (regression-tested below) without an allocation per post, and
        // written by a single `write_all`.
        let mut wire = std::mem::take(&mut *self.scratch.lock());
        wire.clear();
        wire.extend_from_slice(b"POST ");
        wire.extend_from_slice(target.as_bytes());
        wire.extend_from_slice(b" HTTP/1.1\r\nContent-Length: ");
        // wsg_lint: allow(E2) — io::Write to a Vec is infallible
        let _ = write!(wire, "{}", body.len());
        wire.extend_from_slice(b"\r\nHost: ");
        // wsg_lint: allow(E2) — io::Write to a Vec is infallible
        let _ = write!(wire, "{addr}");
        wire.extend_from_slice(b"\r\nContent-Type: ");
        wire.extend_from_slice(SOAP_CONTENT_TYPE.as_bytes());
        wire.extend_from_slice(b"\r\n");
        if let Some(action) = action {
            wire.extend_from_slice(b"SOAPAction: \"");
            wire.extend_from_slice(action.as_bytes());
            wire.extend_from_slice(b"\"\r\n");
        }
        for (name, value) in extra_headers {
            wire.extend_from_slice(name.as_bytes());
            wire.extend_from_slice(b": ");
            wire.extend_from_slice(value.as_bytes());
            wire.extend_from_slice(b"\r\n");
        }
        wire.extend_from_slice(b"\r\n");
        wire.extend_from_slice(body);

        let result = self.drive(addr, &wire, started);
        *self.scratch.lock() = wire;
        result
    }

    /// The retry loop behind [`SoapHttpClient::post`], over finished wire
    /// bytes.
    fn drive(
        &self,
        addr: SocketAddr,
        wire: &[u8],
        started: Instant,
    ) -> Result<PostOutcome, PostError> {
        let mut attempts = 0u32;
        loop {
            // Pooled connections first. A dead one costs nothing: the
            // server may have idled it out, which says nothing about
            // whether the peer is reachable now.
            while let Some(stream) = self.take_pooled(addr) {
                if let Ok(outcome) = self.exchange(&stream, wire) {
                    self.counters.pool_hits.inc();
                    self.maybe_pool(addr, stream, &outcome);
                    return Ok(self.finish(outcome, attempts.max(1), started));
                }
            }
            attempts += 1;
            match self.connect_and_exchange(addr, wire) {
                Ok((stream, response)) => {
                    if attempts == 1 {
                        self.counters.pool_misses.inc();
                    }
                    self.maybe_pool(addr, stream, &response);
                    return Ok(self.finish(response, attempts, started));
                }
                Err(err) => {
                    // A fresh connect failed, so any idle streams to this
                    // peer are almost certainly dead too — drop them now
                    // instead of burning a round-trip each on discovery.
                    self.evict(addr);
                    if attempts > self.config.retries {
                        self.counters.post_failures.inc();
                        return Err(PostError { attempts, last: err });
                    }
                    self.counters.retries.inc();
                    let backoff = self.backoff(attempts);
                    self.counters
                        .backoff_micros
                        .add(backoff.as_micros().min(u128::from(u64::MAX)) as u64);
                    std::thread::sleep(backoff);
                }
            }
        }
    }

    // Record the per-post metrics a delivered exchange contributes.
    fn finish(&self, response: Response, attempts: u32, started: Instant) -> PostOutcome {
        let class = match response.status / 100 {
            2 => "2xx",
            3 => "3xx",
            4 => "4xx",
            _ => "5xx",
        };
        self.counters.responses.with(&[class]).inc();
        self.counters
            .post_micros
            .observe(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        PostOutcome { response, attempts }
    }

    /// Nominal exponential backoff before retry `n` (1-based), jittered
    /// into `[0.5, 1.0]` of nominal so synchronized peers desynchronize.
    fn backoff(&self, n: u32) -> Duration {
        let nominal = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (n - 1).min(16))
            .min(self.config.backoff_cap);
        let jitter = self.rng.lock().gen_range(0.5..1.0);
        nominal.mul_f64(jitter)
    }

    fn take_pooled(&self, addr: SocketAddr) -> Option<TcpStream> {
        self.pool.lock().get_mut(&addr)?.pop()
    }

    /// Drop every idle pooled connection to `addr`.
    ///
    /// Called internally whenever a fresh connect to `addr` fails, and by
    /// membership-aware runtimes when a failure detector declares the
    /// peer `Suspect`/`Dead` — keeping sockets to a dead peer only delays
    /// discovering the failure on the next post. Returns how many idle
    /// streams were dropped.
    pub fn evict(&self, addr: SocketAddr) -> usize {
        let dropped = self.pool.lock().remove(&addr).map_or(0, |idle| idle.len());
        if dropped > 0 {
            self.counters.pool_evictions.add(dropped as u64);
        }
        dropped
    }

    fn maybe_pool(&self, addr: SocketAddr, stream: TcpStream, response: &Response) {
        if !response.keep_alive() {
            return;
        }
        let mut pool = self.pool.lock();
        let idle = pool.entry(addr).or_default();
        if idle.len() < self.config.pool_per_host {
            idle.push(stream);
        }
    }

    fn connect_and_exchange(
        &self,
        addr: SocketAddr,
        wire: &[u8],
    ) -> std::io::Result<(TcpStream, Response)> {
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        // wsg_lint: allow(E2) — Nagle is a latency tuning; a socket that rejects it still serves
        let _ = stream.set_nodelay(true);
        let response = self.exchange(&stream, wire)?;
        Ok((stream, response))
    }

    fn exchange(&self, mut stream: &TcpStream, wire: &[u8]) -> std::io::Result<Response> {
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.write_all(wire)?;
        let mut parser = ResponseParser::new();
        let mut chunk = [0u8; 4096];
        loop {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a full response",
                ));
            }
            parser.feed(&chunk[..n]);
            match parser.parse() {
                Ok(Parsed::Complete(response)) => return Ok(response),
                Ok(Parsed::Partial) => continue,
                Err(err) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unparseable response: {err}"),
                    ))
                }
            }
        }
    }

    /// Total posts started.
    pub fn posts(&self) -> u64 {
        self.counters.posts.get()
    }

    /// Transport-level retries performed (sleeps taken).
    pub fn retries_performed(&self) -> u64 {
        self.counters.retries.get()
    }

    /// Posts answered over a pooled (kept-alive) connection.
    pub fn pool_hits(&self) -> u64 {
        self.counters.pool_hits.get()
    }

    /// Posts that had to open a fresh connection.
    pub fn pool_misses(&self) -> u64 {
        self.counters.pool_misses.get()
    }

    /// Idle pooled connections for `addr` right now (test visibility).
    pub fn pooled(&self, addr: SocketAddr) -> usize {
        self.pool.lock().get(&addr).map_or(0, Vec::len)
    }

    /// Idle pooled connections dropped by [`SoapHttpClient::evict`].
    pub fn pool_evictions(&self) -> u64 {
        self.counters.pool_evictions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Request;
    use crate::server::{HttpServerConfig, SoapHttpServer, SoapReply, SoapRequest, Service};
    use std::sync::Arc;
    use wsg_soap::{Envelope, MessageHeaders};
    use wsg_xml::Element;

    fn accept_service() -> Service {
        Arc::new(|_req: SoapRequest| Ok(SoapReply::Accepted))
    }

    fn sample_xml() -> String {
        Envelope::request(
            MessageHeaders::request("http://node1/gossip", "urn:svc:Notify"),
            Element::text_node("tick", "ACME 101.25"),
        )
        .to_xml()
    }

    #[test]
    fn post_roundtrip_and_pooling() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", accept_service(), HttpServerConfig::default())
                .unwrap();
        let client = SoapHttpClient::new(7, HttpClientConfig::default());
        let xml = sample_xml();
        let first = client
            .post(server.local_addr(), "/gossip", Some("urn:svc:Notify"), &[], xml.as_bytes())
            .unwrap();
        assert_eq!(first.response.status, 202);
        assert_eq!(first.attempts, 1);
        assert_eq!(client.pooled(server.local_addr()), 1);
        let second = client
            .post(server.local_addr(), "/gossip", Some("urn:svc:Notify"), &[], xml.as_bytes())
            .unwrap();
        assert_eq!(second.response.status, 202);
        assert_eq!(client.pool_hits(), 1);
        server.shutdown();
    }

    #[test]
    fn refused_connection_exhausts_retries() {
        // Bind then drop: the port is (almost certainly) refused.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let config = HttpClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            connect_timeout: Duration::from_millis(200),
            ..HttpClientConfig::default()
        };
        let client = SoapHttpClient::new(11, config);
        let err = client.post(addr, "/gossip", None, &[], b"<x/>").unwrap_err();
        assert_eq!(err.attempts, 4, "1 initial + 3 retries");
        assert_eq!(client.retries_performed(), 3);
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let config = HttpClientConfig::default();
        let a = SoapHttpClient::new(99, config.clone());
        let b = SoapHttpClient::new(99, config);
        let delays_a: Vec<Duration> = (1..=4).map(|n| a.backoff(n)).collect();
        let delays_b: Vec<Duration> = (1..=4).map(|n| b.backoff(n)).collect();
        assert_eq!(delays_a, delays_b);
        // Nominal doubling with cap: each delay sits in [0.5, 1.0]×nominal.
        let base = Duration::from_millis(20);
        for (i, d) in delays_a.iter().enumerate() {
            let nominal = base.saturating_mul(1 << i).min(Duration::from_millis(200));
            assert!(*d >= nominal.mul_f64(0.5) && *d <= nominal, "delay {i}: {d:?}");
        }
    }

    #[test]
    fn dead_pooled_connection_does_not_burn_an_attempt() {
        let config = HttpServerConfig {
            keep_alive: Duration::from_millis(80),
            ..HttpServerConfig::default()
        };
        let mut server = SoapHttpServer::bind("127.0.0.1:0", accept_service(), config).unwrap();
        let client = SoapHttpClient::new(3, HttpClientConfig::default());
        let xml = sample_xml();
        let addr = server.local_addr();
        client.post(addr, "/gossip", None, &[], xml.as_bytes()).unwrap();
        assert_eq!(client.pooled(addr), 1);
        // Wait for the server to idle the pooled connection out.
        std::thread::sleep(Duration::from_millis(300));
        let outcome = client.post(addr, "/gossip", None, &[], xml.as_bytes()).unwrap();
        assert_eq!(outcome.response.status, 202);
        assert_eq!(outcome.attempts, 1, "stale pool entry must not count as an attempt");
        assert_eq!(client.retries_performed(), 0);
        server.shutdown();
    }

    #[test]
    fn eviction_drops_idle_streams_and_counts_them() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", accept_service(), HttpServerConfig::default())
                .unwrap();
        let client = SoapHttpClient::new(21, HttpClientConfig::default());
        let addr = server.local_addr();
        let xml = sample_xml();
        client.post(addr, "/gossip", None, &[], xml.as_bytes()).unwrap();
        assert_eq!(client.pooled(addr), 1);
        assert_eq!(client.evict(addr), 1, "one idle stream to drop");
        assert_eq!(client.pooled(addr), 0);
        assert_eq!(client.pool_evictions(), 1);
        assert_eq!(client.evict(addr), 0, "eviction is idempotent");
        assert_eq!(client.pool_evictions(), 1, "empty evictions are not counted");
        server.shutdown();
    }

    #[test]
    fn failed_connect_evicts_the_peers_pool() {
        // Pool a live connection, kill the server, then post again: the
        // fresh connect fails and must flush the now-dead pooled stream.
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", accept_service(), HttpServerConfig::default())
                .unwrap();
        let addr = server.local_addr();
        let config = HttpClientConfig {
            retries: 0,
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_millis(300),
            ..HttpClientConfig::default()
        };
        let client = SoapHttpClient::new(17, config);
        let xml = sample_xml();
        client.post(addr, "/gossip", None, &[], xml.as_bytes()).unwrap();
        assert_eq!(client.pooled(addr), 1);
        server.shutdown();
        // The pooled stream fails first (without costing an attempt), then
        // the fresh connect fails, which evicts whatever is left keyed on
        // this address.
        assert!(client.post(addr, "/gossip", None, &[], xml.as_bytes()).is_err());
        assert_eq!(client.pooled(addr), 0, "dead peer must not retain pool entries");
    }

    #[test]
    fn observed_client_exports_transport_metrics() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", accept_service(), HttpServerConfig::default())
                .unwrap();
        let registry = Registry::new();
        let client = SoapHttpClient::new_observed(7, HttpClientConfig::default(), &registry);
        let xml = sample_xml();
        client.post(server.local_addr(), "/gossip", None, &[], xml.as_bytes()).unwrap();
        client.post(server.local_addr(), "/gossip", None, &[], xml.as_bytes()).unwrap();
        let text = registry.render();
        assert!(text.contains("wsg_http_client_posts_total 2\n"), "got: {text}");
        assert!(text.contains("wsg_http_client_pool_hits_total 1\n"), "got: {text}");
        assert!(text.contains("wsg_http_client_pool_misses_total 1\n"), "got: {text}");
        assert!(text.contains("wsg_http_client_responses_total{class=\"2xx\"} 2\n"));
        assert!(text.contains("wsg_http_client_post_micros_count 2\n"));
        server.shutdown();
    }

    #[test]
    fn failed_posts_count_retries_and_backoff_time() {
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let registry = Registry::new();
        let config = HttpClientConfig {
            retries: 2,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(8),
            connect_timeout: Duration::from_millis(100),
            ..HttpClientConfig::default()
        };
        let client = SoapHttpClient::new_observed(13, config, &registry);
        assert!(client.post(addr, "/gossip", None, &[], b"<x/>").is_err());
        let text = registry.render();
        assert!(text.contains("wsg_http_client_post_failures_total 1\n"), "got: {text}");
        assert!(text.contains("wsg_http_client_retries_total 2\n"), "got: {text}");
        let samples = wsg_obs::parse_exposition(&text).unwrap();
        let backoff = samples
            .iter()
            .find(|(k, _)| k == "wsg_http_client_backoff_micros_total")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(backoff > 0.0, "backoff sleeps must be accounted");
    }

    #[test]
    fn wire_bytes_are_byte_identical_to_the_request_builder() {
        // Capture what post() actually writes with a raw listener and
        // compare against the builder path the client used before the
        // scratch-buffer rewrite. Two posts over one kept-alive stream
        // prove the reused buffer is cleared between posts. This also
        // pins the batch-of-1 transport guarantee: a lone queued envelope
        // is posted through this exact path, so its wire bytes equal the
        // pre-batching single-envelope POST.
        use crate::parser::RequestParser;

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            for _ in 0..2 {
                loop {
                    let mut probe = RequestParser::new();
                    probe.feed(&buf);
                    if matches!(probe.parse(), Ok(Parsed::Complete(_))) {
                        break;
                    }
                    let n = stream.read(&mut chunk).unwrap();
                    assert!(n > 0, "client closed early");
                    buf.extend_from_slice(&chunk[..n]);
                }
                stream
                    .write_all(b"HTTP/1.1 202 Accepted\r\nContent-Length: 0\r\n\r\n")
                    .unwrap();
                tx.send(std::mem::take(&mut buf)).unwrap();
            }
        });

        let client = SoapHttpClient::new(1, HttpClientConfig::default());
        let xml = sample_xml();
        let node_header = [("X-WSG-Node".to_string(), "3".to_string())];
        for round in 0..2 {
            let outcome = client
                .post(addr, "/gossip", Some("urn:svc:Notify"), &node_header, xml.as_bytes())
                .unwrap();
            assert_eq!(outcome.response.status, 202);
            let captured = rx.recv().unwrap();
            let expected = Request::post("/gossip", xml.clone().into_bytes())
                .with_header("Host", addr.to_string())
                .with_header("Content-Type", SOAP_CONTENT_TYPE)
                .with_header("SOAPAction", "\"urn:svc:Notify\"")
                .with_header("X-WSG-Node", "3")
                .to_bytes();
            assert_eq!(
                String::from_utf8_lossy(&captured),
                String::from_utf8_lossy(&expected),
                "post {round} diverged from the builder wire format"
            );
        }
        server.join().unwrap();
    }

    #[test]
    fn http_error_status_is_not_retried() {
        let service: Service = Arc::new(|_req| {
            Err(wsg_soap::Fault::new(wsg_soap::FaultCode::Receiver, "always fails"))
        });
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", service, HttpServerConfig::default()).unwrap();
        let client = SoapHttpClient::new(5, HttpClientConfig::default());
        let outcome = client
            .post(server.local_addr(), "/gossip", None, &[], sample_xml().as_bytes())
            .unwrap();
        assert_eq!(outcome.response.status, 500);
        assert_eq!(client.retries_performed(), 0);
        server.shutdown();
    }
}
