//! The SOAP-over-HTTP client: pooled keep-alive connections, timeouts,
//! and bounded retry with seeded jittered exponential backoff.
//!
//! [`SoapHttpClient`] keeps one small pool of idle `TcpStream`s per peer
//! address. A [`SoapHttpClient::post`] first drains the pool — a pooled
//! connection that turns out dead (the server idled it out) is discarded
//! *without* consuming a retry attempt, since no fresh connect was tried
//! yet — then falls back to a fresh `connect_timeout`.
//!
//! Transport failures (refused/reset/timeout) are retried up to
//! `retries` times with exponential backoff jittered into `[0.5, 1.0]` of
//! the nominal delay. The jitter comes from a seeded `wsg_net::rng::Pcg32`,
//! so a failing test replays with identical sleep schedules. An HTTP-level
//! error (a 4xx/5xx response) is **not** retried: the bytes made it across,
//! which is all the transport promises.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use wsg_net::rng::{Pcg32, RngExt};
use wsg_net::sync::Mutex;

use crate::message::{Request, Response};
use crate::parser::{Parsed, ResponseParser};
use crate::server::SOAP_CONTENT_TYPE;

/// Tuning knobs for [`SoapHttpClient`].
#[derive(Debug, Clone)]
pub struct HttpClientConfig {
    /// Timeout for establishing a fresh connection.
    pub connect_timeout: Duration,
    /// Timeout for reading a response.
    pub read_timeout: Duration,
    /// Timeout for writing a request.
    pub write_timeout: Duration,
    /// Transport-level retries after the first attempt.
    pub retries: u32,
    /// Nominal backoff before retry `n` is `backoff_base * 2^(n-1)`...
    pub backoff_base: Duration,
    /// ...capped at this much, then jittered into `[0.5, 1.0]` of nominal.
    pub backoff_cap: Duration,
    /// Idle connections kept per peer address.
    pub pool_per_host: usize,
}

impl Default for HttpClientConfig {
    fn default() -> Self {
        HttpClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            retries: 2,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(200),
            pool_per_host: 2,
        }
    }
}

/// A delivered exchange: the response plus how hard it was to get.
#[derive(Debug, Clone)]
pub struct PostOutcome {
    /// The parsed HTTP response (any status — 500 is still an outcome).
    pub response: Response,
    /// Connect attempts made, counting the successful one.
    pub attempts: u32,
}

/// All attempts failed at the transport level.
#[derive(Debug)]
pub struct PostError {
    /// Connect attempts made.
    pub attempts: u32,
    /// The error from the final attempt.
    pub last: std::io::Error,
}

impl std::fmt::Display for PostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "post failed after {} attempts: {}", self.attempts, self.last)
    }
}

impl std::error::Error for PostError {}

#[derive(Debug, Default)]
struct ClientCounters {
    posts: AtomicU64,
    retries: AtomicU64,
    pool_hits: AtomicU64,
}

/// A pooled, retrying SOAP-over-HTTP client.
pub struct SoapHttpClient {
    config: HttpClientConfig,
    pool: Mutex<HashMap<SocketAddr, Vec<TcpStream>>>,
    rng: Mutex<Pcg32>,
    counters: ClientCounters,
}

impl SoapHttpClient {
    /// A client whose backoff jitter is derived from `seed`.
    pub fn new(seed: u64, config: HttpClientConfig) -> Self {
        SoapHttpClient {
            config,
            pool: Mutex::new(HashMap::new()),
            rng: Mutex::new(Pcg32::new(seed, 0x5350_4f54)),
            counters: ClientCounters::default(),
        }
    }

    /// POST a SOAP envelope (as raw XML bytes) to `addr`.
    ///
    /// `action` becomes the quoted `SOAPAction` header; `extra_headers`
    /// are appended verbatim (the runtime uses this for the node-id
    /// header). Returns the response for **any** HTTP status; [`Err`] means
    /// the bytes never made it across despite `1 + retries` attempts.
    ///
    /// # Errors
    ///
    /// [`PostError`] carries the final attempt's I/O error.
    pub fn post(
        &self,
        addr: SocketAddr,
        target: &str,
        action: Option<&str>,
        extra_headers: &[(String, String)],
        body: &[u8],
    ) -> Result<PostOutcome, PostError> {
        self.counters.posts.fetch_add(1, Ordering::Relaxed);
        let mut request = Request::post(target, body.to_vec())
            .with_header("Host", addr.to_string())
            .with_header("Content-Type", SOAP_CONTENT_TYPE);
        if let Some(action) = action {
            request = request.with_header("SOAPAction", format!("\"{action}\""));
        }
        for (name, value) in extra_headers {
            request = request.with_header(name.clone(), value.clone());
        }
        let wire = request.to_bytes();

        let mut attempts = 0u32;
        loop {
            // Pooled connections first. A dead one costs nothing: the
            // server may have idled it out, which says nothing about
            // whether the peer is reachable now.
            while let Some(stream) = self.take_pooled(addr) {
                if let Ok(outcome) = self.exchange(&stream, &wire) {
                    self.counters.pool_hits.fetch_add(1, Ordering::Relaxed);
                    self.maybe_pool(addr, stream, &outcome);
                    return Ok(PostOutcome { response: outcome, attempts: attempts.max(1) });
                }
            }
            attempts += 1;
            match self.connect_and_exchange(addr, &wire) {
                Ok((stream, response)) => {
                    self.maybe_pool(addr, stream, &response);
                    return Ok(PostOutcome { response, attempts });
                }
                Err(err) => {
                    if attempts > self.config.retries {
                        return Err(PostError { attempts, last: err });
                    }
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.backoff(attempts));
                }
            }
        }
    }

    /// Nominal exponential backoff before retry `n` (1-based), jittered
    /// into `[0.5, 1.0]` of nominal so synchronized peers desynchronize.
    fn backoff(&self, n: u32) -> Duration {
        let nominal = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (n - 1).min(16))
            .min(self.config.backoff_cap);
        let jitter = self.rng.lock().gen_range(0.5..1.0);
        nominal.mul_f64(jitter)
    }

    fn take_pooled(&self, addr: SocketAddr) -> Option<TcpStream> {
        self.pool.lock().get_mut(&addr)?.pop()
    }

    fn maybe_pool(&self, addr: SocketAddr, stream: TcpStream, response: &Response) {
        if !response.keep_alive() {
            return;
        }
        let mut pool = self.pool.lock();
        let idle = pool.entry(addr).or_default();
        if idle.len() < self.config.pool_per_host {
            idle.push(stream);
        }
    }

    fn connect_and_exchange(
        &self,
        addr: SocketAddr,
        wire: &[u8],
    ) -> std::io::Result<(TcpStream, Response)> {
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        let response = self.exchange(&stream, wire)?;
        Ok((stream, response))
    }

    fn exchange(&self, mut stream: &TcpStream, wire: &[u8]) -> std::io::Result<Response> {
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.write_all(wire)?;
        let mut parser = ResponseParser::new();
        let mut chunk = [0u8; 4096];
        loop {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a full response",
                ));
            }
            parser.feed(&chunk[..n]);
            match parser.parse() {
                Ok(Parsed::Complete(response)) => return Ok(response),
                Ok(Parsed::Partial) => continue,
                Err(err) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unparseable response: {err}"),
                    ))
                }
            }
        }
    }

    /// Total posts started.
    pub fn posts(&self) -> u64 {
        self.counters.posts.load(Ordering::Relaxed)
    }

    /// Transport-level retries performed (sleeps taken).
    pub fn retries_performed(&self) -> u64 {
        self.counters.retries.load(Ordering::Relaxed)
    }

    /// Posts answered over a pooled (kept-alive) connection.
    pub fn pool_hits(&self) -> u64 {
        self.counters.pool_hits.load(Ordering::Relaxed)
    }

    /// Idle pooled connections for `addr` right now (test visibility).
    pub fn pooled(&self, addr: SocketAddr) -> usize {
        self.pool.lock().get(&addr).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HttpServerConfig, SoapHttpServer, SoapReply, SoapRequest, Service};
    use std::sync::Arc;
    use wsg_soap::{Envelope, MessageHeaders};
    use wsg_xml::Element;

    fn accept_service() -> Service {
        Arc::new(|_req: SoapRequest| Ok(SoapReply::Accepted))
    }

    fn sample_xml() -> String {
        Envelope::request(
            MessageHeaders::request("http://node1/gossip", "urn:svc:Notify"),
            Element::text_node("tick", "ACME 101.25"),
        )
        .to_xml()
    }

    #[test]
    fn post_roundtrip_and_pooling() {
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", accept_service(), HttpServerConfig::default())
                .unwrap();
        let client = SoapHttpClient::new(7, HttpClientConfig::default());
        let xml = sample_xml();
        let first = client
            .post(server.local_addr(), "/gossip", Some("urn:svc:Notify"), &[], xml.as_bytes())
            .unwrap();
        assert_eq!(first.response.status, 202);
        assert_eq!(first.attempts, 1);
        assert_eq!(client.pooled(server.local_addr()), 1);
        let second = client
            .post(server.local_addr(), "/gossip", Some("urn:svc:Notify"), &[], xml.as_bytes())
            .unwrap();
        assert_eq!(second.response.status, 202);
        assert_eq!(client.pool_hits(), 1);
        server.shutdown();
    }

    #[test]
    fn refused_connection_exhausts_retries() {
        // Bind then drop: the port is (almost certainly) refused.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let config = HttpClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            connect_timeout: Duration::from_millis(200),
            ..HttpClientConfig::default()
        };
        let client = SoapHttpClient::new(11, config);
        let err = client.post(addr, "/gossip", None, &[], b"<x/>").unwrap_err();
        assert_eq!(err.attempts, 4, "1 initial + 3 retries");
        assert_eq!(client.retries_performed(), 3);
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let config = HttpClientConfig::default();
        let a = SoapHttpClient::new(99, config.clone());
        let b = SoapHttpClient::new(99, config);
        let delays_a: Vec<Duration> = (1..=4).map(|n| a.backoff(n)).collect();
        let delays_b: Vec<Duration> = (1..=4).map(|n| b.backoff(n)).collect();
        assert_eq!(delays_a, delays_b);
        // Nominal doubling with cap: each delay sits in [0.5, 1.0]×nominal.
        let base = Duration::from_millis(20);
        for (i, d) in delays_a.iter().enumerate() {
            let nominal = base.saturating_mul(1 << i).min(Duration::from_millis(200));
            assert!(*d >= nominal.mul_f64(0.5) && *d <= nominal, "delay {i}: {d:?}");
        }
    }

    #[test]
    fn dead_pooled_connection_does_not_burn_an_attempt() {
        let config = HttpServerConfig {
            keep_alive: Duration::from_millis(80),
            ..HttpServerConfig::default()
        };
        let mut server = SoapHttpServer::bind("127.0.0.1:0", accept_service(), config).unwrap();
        let client = SoapHttpClient::new(3, HttpClientConfig::default());
        let xml = sample_xml();
        let addr = server.local_addr();
        client.post(addr, "/gossip", None, &[], xml.as_bytes()).unwrap();
        assert_eq!(client.pooled(addr), 1);
        // Wait for the server to idle the pooled connection out.
        std::thread::sleep(Duration::from_millis(300));
        let outcome = client.post(addr, "/gossip", None, &[], xml.as_bytes()).unwrap();
        assert_eq!(outcome.response.status, 202);
        assert_eq!(outcome.attempts, 1, "stale pool entry must not count as an attempt");
        assert_eq!(client.retries_performed(), 0);
        server.shutdown();
    }

    #[test]
    fn http_error_status_is_not_retried() {
        let service: Service = Arc::new(|_req| {
            Err(wsg_soap::Fault::new(wsg_soap::FaultCode::Receiver, "always fails"))
        });
        let mut server =
            SoapHttpServer::bind("127.0.0.1:0", service, HttpServerConfig::default()).unwrap();
        let client = SoapHttpClient::new(5, HttpClientConfig::default());
        let outcome = client
            .post(server.local_addr(), "/gossip", None, &[], sample_xml().as_bytes())
            .unwrap();
        assert_eq!(outcome.response.status, 500);
        assert_eq!(client.retries_performed(), 0);
        server.shutdown();
    }
}
